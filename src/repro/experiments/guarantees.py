"""Experiment G1 (extension): delivery guarantees under churn and storms.

The delivery-guarantees tier (docs/GUARANTEES.md) claims that durable
custody logging turns HyperSub's best-effort dissemination into
subscriber-acked at-least-once delivery (exactly-once after the
``_delivered`` dedup filter), and that the FIFO / causal ordering
layers keep their promises *through* redelivery, hop-failover and
crash-rejoin.  Claims of that shape die in the gap between "the unit
tests pass" and "the full stack under faults agrees", so this
experiment runs the full grid:

* **modes** -- ``best_effort`` (the unchanged baseline), ``durable``
  (custody, no ordering), ``durable+fifo``, ``durable+causal``;
* **fault schedules** -- a 20% burst crash-and-rejoin churn
  (:meth:`FaultSchedule.random_churn`), and a 10x hotspot storm at the
  most-loaded surrogate under the finite service model with overload
  protection *off*, so shed packets actually destroy deliveries.

Every cell measures delivery ratio against a global-knowledge oracle
(all matching subscriptions, crashed subscribers included -- they
rejoin, so durable modes owe them the events), duplicate deliveries,
and ordering violations by **two independent oracles**:

* a live protocol-independent check fed by ``system.on_deliver``:
  publisher order is the order ``publish()`` was called, causal
  dependencies are snapshotted at publish time as "events this
  publisher node had seen";
* the trace-replay oracle of :mod:`repro.analysis.trace`, wired
  through :class:`~repro.faults.InvariantChecker` (``check_ordering``)
  over the cell's span trace.

The headline: durable modes heal to ratio 1.0 with zero violations and
zero duplicates where best-effort visibly loses events, at a measured
overhead (bytes/event, delivery latency, custody-log occupancy).

One caveat is deliberate: durable delivery is conditional on the
subscription state itself surviving -- if *all* ``k`` replicas of an
arc crash simultaneously, a match site can vacuously ack an event the
lost repository would have matched.  The churn sampler therefore
re-seeds until no replica chain is wholly inside the victim set (the
standard "at most k-1 simultaneous failures" assumption of any
k-replicated store); ordered cells do not need it because the
owner-only rule parks custody until the exact owner returns.

Cells are independent and CPU-bound, so they run through the parallel
runner (:func:`repro.runner.map_tasks`).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.compare import ShapeReport
from repro.core.config import HyperSubConfig
from repro.core.system import HyperSubSystem
from repro.experiments.common import scale_from_env
from repro.faults import FaultSchedule
from repro.runner import map_tasks
from repro.telemetry.session import current_session, telemetry_session
from repro.workloads import WorkloadGenerator, default_paper_spec

#: The four delivery modes of the grid: (label, delivery_mode, ordering).
MODES = (
    ("best-effort", "best_effort", "none"),
    ("durable", "durable", "none"),
    ("durable+fifo", "durable", "fifo"),
    ("durable+causal", "durable", "causal"),
)
FAULTS = ("churn", "storm")

#: Event stream starts after setup has settled.
_WARMUP_MS = 3_000.0
#: Churn timeline: burst crash, then a rejoin window well inside the
#: publishing phase so durable custody must bridge a real blackout.
_CRASH_WINDOW = (5_000.0, 8_000.0)
_REJOIN_WINDOW = (12_000.0, 16_000.0)
_FAIL_FRACTION = 0.2
#: Storm: 10x the service rate at the hottest surrogate (finite service
#: model, protection off -- the R3 "destroyed deliveries" regime).
_STORM_WINDOW = (5_000.0, 12_000.0)
_SERVICE_RATE = 0.5
_QUEUE_CAPACITY = 64
_STORM_RATE = 10.0 * _SERVICE_RATE
#: Custody redelivery period: several rounds fit inside the drain tail.
_REDELIVERY_MS = 2_000.0
#: Ordered cells publish from a few fixed nodes so per-publisher
#: streams are long enough for ordering to be falsifiable.
_ORDERED_PUBLISHERS = 5
#: Simulated drain tail after the last scheduled disturbance.
_DRAIN_MS = 45_000.0
#: Adaptive heal tail: after the fixed drain, durable cells keep the
#: services running in slices until every custody log is empty.  The
#: storm cells queue thousands of redeliveries behind a saturated
#: victim, so "heals eventually" needs *eventually*, not a guess.
_HEAL_SLICE_MS = 5_000.0
#: Hard cap on the heal tail (simulated): a cell that cannot drain in
#: this long has a real retirement bug, which the drain check reports.
_HEAL_CAP_MS = 600_000.0


@dataclass
class CellResult:
    """One (mode, fault) cell of the guarantee grid."""

    label: str
    mode: str
    ordering: str
    fault: str
    events: int
    delivered: int
    expected: int
    dup: int
    #: live-oracle violations (on_deliver replay)
    fifo_violations: int
    causal_violations: int
    #: trace-replay oracle via InvariantChecker (None for unordered)
    span_violations: Optional[int]
    kb_per_event: float
    lat_mean_ms: float
    lat_p99_ms: float
    #: peak custody-log occupancy across nodes, and what was left
    log_high_water: int
    log_left: int
    durable: Dict[str, int] = field(default_factory=dict)
    gave_up: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def ratio(self) -> float:
        return self.delivered / self.expected if self.expected else 1.0

    @property
    def ordering_violations(self) -> int:
        return (
            self.fifo_violations
            + self.causal_violations
            + (self.span_violations or 0)
        )


@dataclass
class GuaranteesResult:
    cells: List[CellResult]
    report: ShapeReport

    def cell(self, label: str, fault: str) -> CellResult:
        for c in self.cells:
            if c.label == label and c.fault == fault:
                return c
        raise KeyError((label, fault))

    def render(self) -> str:
        lines = [
            "G1 -- delivery guarantees under churn and storms "
            f"({_FAIL_FRACTION:.0%} crash-rejoin churn; "
            f"{_STORM_RATE / _SERVICE_RATE:.0f}x hotspot storm, "
            "protection off)",
            "",
            f"{'cell':16s} {'fault':6s} {'ratio':>7s} {'dup':>4s} "
            f"{'viol':>5s} {'KB/ev':>7s} {'p99 ms':>8s} {'redeliv':>8s} "
            f"{'log hw':>7s}",
        ]
        for c in self.cells:
            viol = "-" if c.ordering == "none" else str(c.ordering_violations)
            lines.append(
                f"{c.label:16s} {c.fault:6s} {c.ratio:7.4f} {c.dup:4d} "
                f"{viol:>5s} {c.kb_per_event:7.2f} {c.lat_p99_ms:8.0f} "
                f"{c.durable.get('redelivered', 0):8d} {c.log_high_water:7d}"
            )
        lines.append("")
        for fault in FAULTS:
            be = self.cell("best-effort", fault)
            du = self.cell("durable", fault)
            lines.append(
                f"{fault}: durable overhead "
                f"{du.kb_per_event / max(be.kb_per_event, 1e-9):.2f}x "
                f"bytes/event over best-effort "
                f"({be.kb_per_event:.2f} -> {du.kb_per_event:.2f} KB)"
            )
        lines += ["", self.report.render()]
        return "\n".join(lines)


def _chain_safe_churn(
    system: HyperSubSystem,
    num_nodes: int,
    k: int,
    seed: int,
) -> Tuple[FaultSchedule, List[int]]:
    """Sample a churn schedule whose victim set never swallows a whole
    replica chain (``k`` ring-consecutive nodes): durable delivery is
    conditional on at most ``k-1`` simultaneous replica failures, like
    any k-replicated store.  Deterministic: seeds are probed in order."""
    ring = sorted(range(num_nodes), key=lambda a: system.nodes[a].node_id)
    n = len(ring)
    last = None
    for attempt in range(64):
        sched, victims = FaultSchedule.random_churn(
            num_nodes,
            _FAIL_FRACTION,
            crash_window=_CRASH_WINDOW,
            rejoin_window=_REJOIN_WINDOW,
            seed=seed + attempt,
        )
        last = (sched, victims)
        vs = set(victims)
        if k <= 1 or not any(
            all(ring[(i + j) % n] in vs for j in range(k)) for i in range(n)
        ):
            return sched, victims
    return last  # pragma: no cover - 64 straight collisions


def _live_fifo_violations(
    per_sub: Dict[Tuple[int, int], List[int]],
    pub_index: Dict[int, Tuple[int, int]],
) -> int:
    """Subscriptions that saw two events of one publisher out of the
    order ``publish()`` was invoked in."""
    violations = 0
    for seq in per_sub.values():
        high: Dict[int, int] = {}
        for eid in seq:
            pub, idx = pub_index[eid]
            if idx < high.get(pub, 0):
                violations += 1
            else:
                high[pub] = idx
    return violations


def _live_causal_violations(
    per_sub: Dict[Tuple[int, int], List[int]],
    pub_deps: Dict[int, frozenset],
) -> int:
    """Deliveries that precede a dependency the same subscription also
    received (deps = events the publisher node had seen at publish)."""
    violations = 0
    for seq in per_sub.values():
        pos = {eid: i for i, eid in enumerate(seq)}
        for i, eid in enumerate(seq):
            for dep in pub_deps[eid]:
                if pos.get(dep, -1) > i:
                    violations += 1
    return violations


def _run_cell(task: dict) -> CellResult:
    """One grid cell, self-contained and picklable for map_tasks.

    Runs under its own scoped telemetry session (tracing on) so the
    trace-replay ordering oracle has spans regardless of which process
    the cell lands in; the session's disk artifacts are discarded.
    """
    t0 = time.time()
    with tempfile.TemporaryDirectory() as tmp:
        with telemetry_session(tmp, tracing=True, profiling=False):
            cell = _run_cell_inner(task)
    cell.wall_seconds = time.time() - t0
    return cell


def _run_cell_inner(task: dict) -> CellResult:
    label, mode, ordering = task["label"], task["mode"], task["ordering"]
    fault: str = task["fault"]
    num_nodes: int = task["num_nodes"]
    num_events: int = task["num_events"]
    seed: int = task["seed"]
    ordered = ordering != "none"
    durable = mode == "durable"

    spec = default_paper_spec(subs_per_node=4)
    gen = WorkloadGenerator(spec, seed=7)

    kw = dict(
        seed=seed,
        reliable_delivery=True,
        retransmit_timeout_ms=1_000.0,
        max_retries=2,
        hop_failover=True,
        failover_backoff_ms=2_000.0,
        delivery_mode=mode,
        ordering=ordering,
    )
    if durable:
        kw.update(durable_redelivery_ms=_REDELIVERY_MS)
    if ordered:
        # Ordering needs the fully-direct topology (occupancy-complete
        # directory + owner-only custody); see docs/GUARANTEES.md.
        kw.update(
            direct_rendezvous_levels=21,
            replication_factor=1,
            anti_entropy=False,
        )
    else:
        kw.update(direct_rendezvous_levels=8, replication_factor=3)
        if fault == "churn":
            kw.update(anti_entropy=True, anti_entropy_interval_ms=2_000.0)
    if fault == "storm":
        kw.update(
            service_model=True,
            service_rate_msgs_per_ms=_SERVICE_RATE,
            ingress_queue_capacity=_QUEUE_CAPACITY,
            overload_protection=False,
        )
    cfg = HyperSubConfig(**kw)

    system = HyperSubSystem(num_nodes=num_nodes, config=cfg)
    system.add_scheme(gen.scheme)
    installed = gen.populate(system)
    system.finish_setup()

    # -- fault schedule ------------------------------------------------
    victims: List[int] = []
    if fault == "churn":
        k = cfg.replication_factor if not ordered else 1
        sched, victims = _chain_safe_churn(system, num_nodes, k, seed + 200)
        last_disturbance = _REJOIN_WINDOW[1]
    else:
        # The storm saturates the hottest surrogate AND its standby
        # replicas (the successors holding its markers): with the whole
        # replica group drowning, hop-failover has no alternate match
        # site to reroute to, so best-effort transport exhausts its
        # retries and sheds -- the loss durable custody exists to
        # repair.  A single-node storm is survivable without custody
        # (failover matches at a standby), which measures routing
        # resilience, not delivery semantics.
        hot = int(np.argmax(system.node_loads()))
        group = [hot] + [
            addr
            for _nid, addr in system.nodes[hot].successors[
                : cfg.replication_factor - 1
            ]
        ]
        sched = FaultSchedule()
        for victim_addr in group:
            sched.storm(
                _STORM_WINDOW[0], _STORM_WINDOW[1], victim_addr, _STORM_RATE
            )
        last_disturbance = _STORM_WINDOW[1]
    sched.install(system)

    # -- services ------------------------------------------------------
    # Ring maintenance runs in EVERY cell, not just churn: give-up
    # driven neighbor eviction is part of the reliable transport, and a
    # ring that can evict must also be able to re-learn.  A storm
    # victim sheds the acks for its own sends and (wrongly) evicts
    # live neighbors -- damage only stabilization repairs once the
    # storm subsides.
    system.start_maintenance(
        stabilize_interval_ms=500.0, rpc_timeout_ms=1_500.0
    )
    if cfg.anti_entropy:
        system.start_anti_entropy()
    if durable:
        system.start_durable_redelivery()

    # -- live oracles: publish order, causal snapshots, deliveries -----
    per_sub: Dict[Tuple[int, int], List[int]] = {}
    seen_at_addr: Dict[int, set] = {}

    def on_deliver(addr: int, event_id: int, subid) -> None:
        per_sub.setdefault((subid.nid, subid.iid), []).append(event_id)
        seen_at_addr.setdefault(addr, set()).add(event_id)

    system.on_deliver = on_deliver

    pub_index: Dict[int, Tuple[int, int]] = {}  # eid -> (addr, k-th)
    pub_deps: Dict[int, frozenset] = {}
    pub_event: Dict[int, object] = {}
    counters: Dict[int, int] = {}

    def do_publish(addr: int, ev) -> None:
        # Causal baseline: everything this node has seen happened-before.
        deps = frozenset(seen_at_addr.get(addr, ()))
        eid = system.publish(addr, ev)
        counters[addr] = counters.get(addr, 0) + 1
        pub_index[eid] = (addr, counters[addr])
        pub_deps[eid] = deps
        pub_event[eid] = ev

    survivors = [a for a in range(num_nodes) if a not in set(victims)]
    publishers = survivors[:_ORDERED_PUBLISHERS] if ordered else survivors
    rng = np.random.default_rng(seed + 300)
    t = _WARMUP_MS
    for _ in range(num_events):
        t += float(rng.exponential(spec.mean_interarrival_ms))
        addr = int(publishers[rng.integers(0, len(publishers))])
        system.sim.schedule_at(t, do_publish, addr, gen.event())

    run_end = max(t, last_disturbance) + _DRAIN_MS
    if system.telemetry is not None:
        system.sim.schedule_every(
            1_000.0, system.sample_telemetry, until=run_end
        )
    system.run(until=run_end)
    if durable:
        # Adaptive heal tail: custody retirement is the termination
        # signal.  Every obligation is eventually ackable (victims all
        # rejoin; storms subside), so a drained log means the system
        # healed -- and a log that cannot drain within the cap is a
        # retirement bug the drain check below will report.
        deadline = system.sim.now + _HEAL_CAP_MS
        while system.sim.now < deadline and any(
            n.durable is not None and n.durable.log for n in system.nodes
        ):
            system.run(
                until=min(deadline, system.sim.now + _HEAL_SLICE_MS)
            )
    system.stop_maintenance()
    if cfg.anti_entropy:
        system.stop_anti_entropy()
    if durable:
        system.stop_durable_redelivery()
    system.run_until_idle()

    # -- delivery ratio vs the global oracle ---------------------------
    assert len(pub_index) == num_events
    delivered = expected = 0
    latencies: List[float] = []
    for eid, ev in pub_event.items():
        want = {sid for s, sid in installed if s.matches(ev)}
        rec = system.metrics.records[eid]
        got = {d[0] for d in rec.deliveries}
        delivered += len(got & want)
        expected += len(want)
        latencies.extend(d[3] for d in rec.deliveries)
    dup = sum(len(seq) - len(set(seq)) for seq in per_sub.values())

    fifo_v = _live_fifo_violations(per_sub, pub_index) if ordered else 0
    causal_v = (
        _live_causal_violations(per_sub, pub_deps)
        if ordering == "causal"
        else 0
    )
    span_v: Optional[int] = None
    if ordered:
        inv = system.check_invariants(
            check_ring=False, check_coverage=False, check_ordering=True
        )
        span_v = len(inv.violations)

    stats = system.network.stats
    lat = np.asarray(latencies) if latencies else np.zeros(1)
    high_water = max(
        (n.durable.high_water for n in system.nodes if n.durable is not None),
        default=0,
    )
    log_left = sum(
        len(n.durable.log) for n in system.nodes if n.durable is not None
    )
    return CellResult(
        label=label,
        mode=mode,
        ordering=ordering,
        fault=fault,
        events=num_events,
        delivered=delivered,
        expected=expected,
        dup=dup,
        fifo_violations=fifo_v,
        causal_violations=causal_v,
        span_violations=span_v,
        kb_per_event=float(
            stats.bytes_for(("ps_event", "ps_dack")) / 1024.0 / num_events
        ),
        lat_mean_ms=float(lat.mean()),
        lat_p99_ms=float(np.percentile(lat, 99)),
        log_high_water=int(high_water),
        log_left=int(log_left),
        durable=dict(stats.durable_counts),
        gave_up=dict(stats.gave_up_by_cause),
    )


def run(
    num_nodes: Optional[int] = None,
    num_events: Optional[int] = None,
    seed: int = 1,
    jobs: Optional[int] = None,
) -> GuaranteesResult:
    n_default, e_default = scale_from_env()
    num_nodes = num_nodes or n_default
    num_events = num_events or e_default

    tasks = [
        {
            "label": label,
            "mode": mode,
            "ordering": ordering,
            "fault": fault,
            "num_nodes": num_nodes,
            "num_events": num_events,
            "seed": seed + 10 * i,
        }
        for i, (label, mode, ordering) in enumerate(MODES)
        for fault in FAULTS
    ]
    cells: List[CellResult] = map_tasks(
        _run_cell, tasks, jobs=jobs, label="guarantees"
    )

    report = ShapeReport("G1 delivery guarantees")
    durable_cells = [c for c in cells if c.mode == "durable"]
    for c in durable_cells:
        report.expect_within(
            c.ratio, 0.999, 1.0,
            f"{c.label}/{c.fault} heals to complete delivery",
        )
    for fault in FAULTS:
        be = next(c for c in cells if c.mode == "best_effort" and c.fault == fault)
        report.expect_true(
            be.ratio < 0.999,
            f"best-effort visibly loses events under {fault}",
            detail=f"ratio {be.ratio:.4f}",
        )
    report.expect_true(
        sum(c.dup for c in durable_cells) == 0,
        "durable delivery is exactly-once (no duplicate deliveries)",
    )
    report.expect_true(
        sum(c.ordering_violations for c in cells if c.ordering != "none") == 0,
        "zero ordering violations (live + trace-replay oracles)",
    )
    report.expect_true(
        all(
            c.durable.get("appends", 0)
            == c.durable.get("acked", 0) + c.durable.get("truncated", 0)
            and c.durable.get("truncated", 0) == 0
            and c.log_left == 0
            for c in durable_cells
        ),
        "custody logs drain fully (every append acked, none truncated)",
    )
    for fault in FAULTS:
        be = next(c for c in cells if c.mode == "best_effort" and c.fault == fault)
        du = next(
            c
            for c in cells
            if c.mode == "durable" and c.ordering == "none" and c.fault == fault
        )
        report.expect_greater(
            du.kb_per_event, be.kb_per_event,
            f"custody overhead is measurable under {fault}",
            slack=1.0,
        )

    sess = current_session()
    if sess is not None:
        sess.record_result(
            "guarantees",
            {
                "ratio_durable": min(c.ratio for c in durable_cells),
                "ratio_best_effort": {
                    c.fault: c.ratio for c in cells if c.mode == "best_effort"
                },
                "ordering_violations": sum(
                    c.ordering_violations for c in cells if c.ordering != "none"
                ),
                "dup_deliveries": sum(c.dup for c in durable_cells),
                "kb_per_event": {
                    f"{c.label}/{c.fault}": c.kb_per_event for c in cells
                },
                "log_high_water": max(c.log_high_water for c in cells),
                "redelivered": sum(
                    c.durable.get("redelivered", 0) for c in cells
                ),
                "shape_ok": report.all_passed,
            },
        )
        sess.annotate(
            guarantees_grid={
                "modes": [m[0] for m in MODES],
                "faults": list(FAULTS),
                "fail_fraction": _FAIL_FRACTION,
                "storm_rate_x": _STORM_RATE / _SERVICE_RATE,
            }
        )
    return GuaranteesResult(cells=cells, report=report)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
