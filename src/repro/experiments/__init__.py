"""Experiment drivers: one module per paper table/figure plus extensions.

Every driver exposes ``run(scale=...)`` returning a result object and
``main()`` printing the paper-comparable series; the benchmark modules
under ``benchmarks/`` wrap these with pytest-benchmark and assert the
qualitative shape checks.

Scales (set ``REPRO_SCALE=paper|default|quick`` or pass explicitly):

* ``paper``   -- the paper's sizes (1740 nodes, 20,000 events; Figure 5
  sweeps 2k-16k nodes).  Minutes to hours of wall time.
* ``default`` -- the paper's topology at reduced event counts; what the
  benchmark suite runs.
* ``quick``   -- small sanity scale for tests.
"""

from repro.experiments.common import (
    DeliveryConfig,
    DeliveryResult,
    run_delivery,
    scale_from_env,
)

__all__ = [
    "DeliveryConfig",
    "DeliveryResult",
    "run_delivery",
    "scale_from_env",
]
