"""Experiment H1 (extension): load balancing with heterogeneous capacities.

End of Section 5.2: "In this paper, we assume all nodes have same
capacity (same threshold factors).  We will evaluate the performance
and cost for load balancing in heterogeneous environment with various
parameters in the future."

The scenario gives the *heavily loaded* surrogates ``capacity_ratio``
times everyone else's capacity -- the deployment a capacity-aware
operator would actually run (provision the hotspot).  Two balancers run
on identical deployments: *capacity-aware* (thresholds and acceptor
ranking normalised per unit capacity -- "the value of the threshold
factor delta for each node is based on the node's capacity") and
*capacity-blind* (the uniform rule the paper evaluates).  The blind
rule sheds load off the big provisioned nodes exactly as if they were
small; the aware rule recognises their headroom and leaves the load
where the capacity is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.compare import ShapeReport
from repro.analysis.tables import format_table
from repro.core.config import HyperSubConfig
from repro.core.system import HyperSubSystem
from repro.workloads import WorkloadGenerator, default_paper_spec


@dataclass
class HeterogeneousResult:
    rows: List[List[object]]
    report: ShapeReport

    def render(self) -> str:
        return "\n\n".join(
            [
                format_table(
                    ["stage", "max load/capacity", "big-node share of load",
                     "big-node share of capacity", "migrations"],
                    self.rows,
                    title="H1 -- capacity-aware migration under 5x "
                    "heterogeneous capacities",
                ),
                self.report.render(),
            ]
        )


def _one_run(
    capacity_aware: bool,
    num_nodes: int,
    subs_per_node: int,
    capacity_ratio: float,
    big_fraction: float,
    rounds: int,
    seed: int,
):
    spec = default_paper_spec(subs_per_node=subs_per_node)
    gen = WorkloadGenerator(spec, seed=7)
    cfg = HyperSubConfig(seed=seed, dynamic_migration=True)
    system = HyperSubSystem(num_nodes=num_nodes, config=cfg)
    system.add_scheme(gen.scheme)

    gen.populate(system)
    system.finish_setup()
    before = system.node_loads().astype(np.float64)
    system.network.stats.reset()

    # The provisioned ("big") nodes are the heaviest surrogates -- the
    # operator put the capacity where the hotspot is.  Both runs use
    # the same workload, hence the same big set.
    n_big = int(big_fraction * num_nodes)
    big_set = {int(a) for a in np.argsort(before)[::-1][:n_big]}
    true_caps = np.array(
        [capacity_ratio if a in big_set else 1.0 for a in range(num_nodes)]
    )
    if capacity_aware:
        for addr, node in enumerate(system.nodes):
            node.capacity = float(true_caps[addr])
    # capacity-blind: decisions keep the default capacity of 1.0
    system.run_migration_rounds(rounds)
    after = system.node_loads().astype(np.float64)
    per_unit = after / true_caps
    big_share = after[list(big_set)].sum() / max(after.sum(), 1e-9)
    return {
        "per_unit_peak_before": float((before / true_caps).max()),
        "per_unit_peak": float(per_unit.max()),
        "big_share": float(big_share),
        "cap_share": float(true_caps[list(big_set)].sum() / true_caps.sum()),
        "migrations": int(
            system.network.stats.msgs_by_kind.get("ps_migrate", 0)
        ),
    }


def run(
    num_nodes: int = 200,
    subs_per_node: int = 10,
    capacity_ratio: float = 5.0,
    big_fraction: float = 0.2,
    rounds: int = 3,
    seed: int = 1,
) -> HeterogeneousResult:
    aware = _one_run(
        True, num_nodes, subs_per_node, capacity_ratio, big_fraction, rounds, seed
    )
    blind = _one_run(
        False, num_nodes, subs_per_node, capacity_ratio, big_fraction, rounds, seed
    )

    rows = [
        ["capacity-aware", aware["per_unit_peak"], aware["big_share"],
         aware["cap_share"], aware["migrations"]],
        ["capacity-blind", blind["per_unit_peak"], blind["big_share"],
         blind["cap_share"], blind["migrations"]],
        ["(before any LB)", aware["per_unit_peak_before"], "-",
         aware["cap_share"], 0],
    ]
    report = ShapeReport("H1 heterogeneous capacities")
    report.expect_less(
        aware["migrations"], blind["migrations"],
        "aware rule migrates less (provisioned nodes stop shedding)",
    )
    report.expect_less(
        aware["per_unit_peak"], blind["per_unit_peak"] * 1.1,
        "aware rule at least matches the blind rule on per-unit peak",
    )
    report.expect_greater(
        aware["big_share"], blind["big_share"],
        "aware rule leaves more load on high-capacity nodes",
    )
    return HeterogeneousResult(rows=rows, report=report)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
