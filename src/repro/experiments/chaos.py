"""Chaos campaign driver: ``python -m repro chaos --rounds N --seed S``.

Every fault experiment before this one replayed a schedule somebody
wrote by hand, so it could only confirm failure modes already imagined.
A chaos campaign searches instead: each *round* samples a fresh random
fault schedule from the seeded :class:`~repro.faults.ChaosNemesis`
(within a :class:`~repro.faults.ChaosBudget` of safety floors), runs
the full pub/sub stack under it, and checks the invariant oracles the
repo already trusts:

* **delivery-ratio convergence** -- after every fault heals and the
  custody logs drain, every matching subscription got every event
  (durable mode; best-effort rounds *measure* the loss instead);
* **exactly-once** -- no subscription sees an event twice, even with
  the network actively duplicating packets;
* **ordering** -- per-publisher FIFO order under the live oracle
  (durable rounds run ``ordering="fifo"``);
* **no self-isolation** -- ring consistency and zone-responsibility
  coverage hold once the dust settles (the PR 6 eviction bugs were
  exactly this class).

A round that violates an oracle is written to
``out/chaos/failing-<seed>-<round>.json`` together with its
ddmin-shrunken form (:mod:`repro.faults.shrink`; verdicts cached in a
:class:`~repro.runner.JsonDocStore` so a re-shrink is nearly free) and
can be replayed bit-identically with ``--replay FILE`` -- the round
digest is a hash over simulation outcomes only, so two replays of one
schedule must produce the same digest or determinism itself broke.

Rounds are independent and fan over the parallel runner
(:func:`repro.runner.map_tasks`) in batches, streaming progress
through the PR 7 observatory (``sweep_status.json`` +
``metrics_stream.jsonl``; watch with ``python -m repro top out/``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import HyperSubConfig
from repro.core.system import HyperSubSystem
from repro.faults import ChaosBudget, ChaosNemesis, FaultSchedule, shrink_spec
from repro.runner import JsonDocStore, map_tasks, resolve_jobs, store_root
from repro.telemetry.session import current_session, telemetry_session
from repro.workloads import WorkloadGenerator, default_paper_spec

#: Round-digest / failing-file schema.
CHAOS_SCHEMA = 1

#: Fleet/stream size for one round.  Rounds are deliberately small --
#: the power of a campaign is *many* schedules, not big ones -- and
#: REPRO_NODES / REPRO_EVENTS override as everywhere else.
_DEFAULT_NODES = 40
_DEFAULT_EVENTS = 80

#: Fixed publisher addresses, protected from crash/flap (their streams
#: anchor the FIFO oracle; partitions and gray faults still hit them).
_PUBLISHERS = (0, 1, 2)

#: Event stream window (faults start inside it; see the budget).
_WARMUP_MS = 2_000.0
_T_END_MS = 30_000.0
#: Fixed drain after the last disturbance, before the adaptive tail.
_DRAIN_MS = 30_000.0
_HEAL_SLICE_MS = 5_000.0
_HEAL_CAP_MS = 600_000.0
#: Finite service model (always on: ``slow`` faults need a service rate
#: to degrade).  Rate is comfortable -- overload comes from faults, not
#: from the baseline load.
_SERVICE_RATE = 2.0
_QUEUE_CAPACITY = 128


def _chaos_scale() -> Tuple[int, int]:
    """(num_nodes, num_events) for one round, env-overridable."""
    def _env_int(name: str, default: int) -> int:
        raw = os.environ.get(name)
        if raw is None or not raw.strip():
            return default
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"{name} must be an integer, got {raw!r}") from None
        if value < 1:
            raise ValueError(f"{name} must be >= 1, got {value}")
        return value

    return _env_int("REPRO_NODES", _DEFAULT_NODES), _env_int(
        "REPRO_EVENTS", _DEFAULT_EVENTS
    )


def chaos_budget(mode: str) -> ChaosBudget:
    """The campaign's budget: what the nemesis may do per round.

    Anything within this budget must be survivable in durable mode --
    every fault heals by ``t_end`` minus a quiet tail, at most two
    crash-kind faults overlap, publishers are never crash-stopped --
    so a durable-round violation is a bug, not an over-aggressive test.
    """
    return ChaosBudget(
        t_start=_WARMUP_MS,
        t_end=_T_END_MS,
        max_faults=6,
        max_concurrent=2,
        max_crash_fraction=0.2,
        min_heal_ms=5_000.0,
        protect=_PUBLISHERS,
    )


# ----------------------------------------------------------------------
# One round
# ----------------------------------------------------------------------
def run_round(task: Dict[str, Any]) -> Dict[str, Any]:
    """One chaos round, self-contained and picklable for map_tasks.

    ``task`` keys: ``mode`` ("durable" | "best-effort"), ``seed``,
    ``round``, ``num_nodes``, ``num_events``, and optional ``spec`` (a
    declarative fault spec; ``None`` = ask the nemesis).  Runs under a
    scoped throwaway telemetry session so worker processes never write
    into the parent's artifacts.
    """
    t0 = time.time()
    with tempfile.TemporaryDirectory() as tmp:
        with telemetry_session(tmp, tracing=False, profiling=False):
            out = _run_round_inner(task)
    out["wall_seconds"] = time.time() - t0
    return out


def _run_round_inner(task: Dict[str, Any]) -> Dict[str, Any]:
    mode: str = task["mode"]
    seed: int = task["seed"]
    rnd: int = task["round"]
    num_nodes: int = task["num_nodes"]
    num_events: int = task["num_events"]
    durable = mode == "durable"

    kw = dict(
        seed=seed % 997,
        code_bits=12,
        reliable_delivery=True,
        retransmit_timeout_ms=1_000.0,
        max_retries=2,
        hop_failover=True,
        failover_backoff_ms=2_000.0,
        service_model=True,
        service_rate_msgs_per_ms=_SERVICE_RATE,
        ingress_queue_capacity=_QUEUE_CAPACITY,
        overload_protection=False,
    )
    if durable:
        # The guarantees tier's ordered configuration: occupancy-
        # complete directory + owner-only custody (docs/GUARANTEES.md).
        kw.update(
            delivery_mode="durable",
            ordering="fifo",
            direct_rendezvous_levels=21,
            replication_factor=1,
            anti_entropy=False,
            durable_redelivery_ms=2_000.0,
            durable_rejoin_grace_ms=2_000.0,
        )
    else:
        kw.update(
            delivery_mode="best_effort",
            direct_rendezvous_levels=8,
            replication_factor=3,
            anti_entropy=True,
            anti_entropy_interval_ms=2_000.0,
        )
    cfg = HyperSubConfig(**kw)

    spec_src = default_paper_spec(subs_per_node=2)
    gen = WorkloadGenerator(spec_src, seed=7 + rnd)

    system = HyperSubSystem(num_nodes=num_nodes, config=cfg)
    system.add_scheme(gen.scheme)
    installed = gen.populate(system)
    system.finish_setup()

    # -- fault schedule: given, or sampled by the nemesis --------------
    fault_spec = task.get("spec")
    if fault_spec is None:
        ring = sorted(range(num_nodes), key=lambda a: system.nodes[a].node_id)
        nemesis = ChaosNemesis(
            num_nodes,
            chaos_budget(mode),
            seed=seed,
            ring=ring,
            # replica floor only binds where losing a chain loses state:
            # best-effort's k-replicated arcs.  Durable custody parks
            # until the owner returns, so k=1 is survivable by design.
            replica_k=cfg.replication_factor if not durable else 1,
        )
        fault_spec = nemesis.generate_spec(rnd)
    sched = FaultSchedule.from_spec(fault_spec)
    sched.install(system)

    system.start_maintenance(stabilize_interval_ms=500.0, rpc_timeout_ms=1_500.0)
    if cfg.anti_entropy:
        system.start_anti_entropy()
    if durable:
        system.start_durable_redelivery()

    # -- live oracles --------------------------------------------------
    per_sub: Dict[Tuple[int, int], List[int]] = {}

    def on_deliver(addr: int, event_id: int, subid) -> None:
        per_sub.setdefault((subid.nid, subid.iid), []).append(event_id)

    system.on_deliver = on_deliver

    pub_index: Dict[int, Tuple[int, int]] = {}
    pub_event: Dict[int, object] = {}
    counters: Dict[int, int] = {}

    def do_publish(addr: int, ev) -> None:
        eid = system.publish(addr, ev)
        counters[addr] = counters.get(addr, 0) + 1
        pub_index[eid] = (addr, counters[addr])
        pub_event[eid] = ev

    rng = np.random.default_rng((seed, rnd, 300))
    t = _WARMUP_MS
    span = _T_END_MS - _WARMUP_MS
    for i in range(num_events):
        t = _WARMUP_MS + span * (i + 1) / (num_events + 1) + float(
            rng.uniform(0.0, span / (num_events + 1))
        )
        addr = int(_PUBLISHERS[int(rng.integers(0, len(_PUBLISHERS)))])
        system.sim.schedule_at(min(t, _T_END_MS), do_publish, addr, gen.event())

    system.run(until=_T_END_MS + _DRAIN_MS)
    if durable:
        deadline = system.sim.now + _HEAL_CAP_MS
        while system.sim.now < deadline and any(
            n.durable is not None and n.durable.log for n in system.nodes
        ):
            system.run(until=min(deadline, system.sim.now + _HEAL_SLICE_MS))
    system.stop_maintenance()
    if cfg.anti_entropy:
        system.stop_anti_entropy()
    if durable:
        system.stop_durable_redelivery()
    system.run_until_idle()

    # -- oracles -------------------------------------------------------
    delivered = expected = 0
    for eid, ev in pub_event.items():
        want = {sid for s, sid in installed if s.matches(ev)}
        rec = system.metrics.records[eid]
        got = {d[0] for d in rec.deliveries}
        delivered += len(got & want)
        expected += len(want)
    lost = expected - delivered
    dup = sum(len(seq) - len(set(seq)) for seq in per_sub.values())

    fifo_v = 0
    if durable:
        for seq in per_sub.values():
            high: Dict[int, int] = {}
            for eid in seq:
                pub, idx = pub_index[eid]
                if idx < high.get(pub, 0):
                    fifo_v += 1
                else:
                    high[pub] = idx

    inv = system.check_invariants(check_ring=True, check_coverage=True)
    inv_violations = list(inv.violations)

    log_left = sum(
        len(n.durable.log) for n in system.nodes if n.durable is not None
    )

    violations: List[str] = [f"invariant: {v}" for v in inv_violations]
    # Exactly-once is unconditional: the dedup layers must absorb
    # network duplication in every mode.
    if dup:
        violations.append(f"duplicate_deliveries: {dup}")
    if durable:
        if lost:
            violations.append(f"delivery_incomplete: {delivered}/{expected}")
        if fifo_v:
            violations.append(f"fifo_violations: {fifo_v}")
        if log_left:
            violations.append(f"custody_undrained: {log_left}")

    stats = system.network.stats
    outcome = {
        "schema": CHAOS_SCHEMA,
        "mode": mode,
        "seed": seed,
        "round": rnd,
        "num_nodes": num_nodes,
        "num_events": num_events,
        "spec": fault_spec,
        "delivered": delivered,
        "expected": expected,
        "lost": lost,
        "dup": dup,
        "fifo_violations": fifo_v,
        "invariant_violations": inv_violations,
        "log_left": log_left,
        "violations": violations,
        "dropped_by_cause": stats.dropped_by_cause,
        "net_duplicated": stats.duplicated,
        "net_reordered": stats.reordered,
        "gave_up_by_cause": stats.gave_up_by_cause,
    }
    outcome["digest"] = round_digest(outcome)
    return outcome


def round_digest(outcome: Dict[str, Any]) -> str:
    """Hash over simulation outcomes only (no wall time, no paths):
    the witness that a replayed schedule reproduced the same run."""
    payload = {
        k: outcome[k]
        for k in (
            "schema", "mode", "seed", "round", "num_nodes", "num_events",
            "spec", "delivered", "expected", "lost", "dup",
            "fifo_violations", "invariant_violations", "log_left",
            "dropped_by_cause", "net_duplicated", "net_reordered",
            "gave_up_by_cause",
        )
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def round_fails(outcome: Dict[str, Any]) -> bool:
    """Is this round a *failure* worth shrinking?

    Durable mode promises zero violations within budget, so any
    violation fails.  Best-effort mode promises nothing about loss --
    loss is the expected, interesting outcome that proves the nemesis
    bites -- so a best-effort round "fails" when it loses deliveries
    (or breaks the unconditional oracles).
    """
    if outcome["violations"]:
        return True
    return outcome["mode"] != "durable" and outcome["lost"] > 0


# ----------------------------------------------------------------------
# Shrinking and replay
# ----------------------------------------------------------------------
def _scenario_key(task: Dict[str, Any]) -> str:
    fixed = {
        k: task[k] for k in ("mode", "seed", "round", "num_nodes", "num_events")
    }
    fixed["schema"] = CHAOS_SCHEMA
    return json.dumps(fixed, sort_keys=True, separators=(",", ":"))


def shrink_failing_round(
    outcome: Dict[str, Any], store: Optional[JsonDocStore] = None
):
    """Minimize a failing round's schedule (cached through ``store``)."""
    task = {
        k: outcome[k]
        for k in ("mode", "seed", "round", "num_nodes", "num_events")
    }

    def fails(spec: List[Dict]) -> bool:
        return round_fails(run_round({**task, "spec": spec}))

    return shrink_spec(
        outcome["spec"],
        fails,
        store=store,
        scenario_key=_scenario_key(task),
    )


def failing_path(out_dir, seed: int, rnd: int) -> Path:
    return Path(out_dir) / f"failing-{seed}-{rnd}.json"


def write_failing(
    out_dir, outcome: Dict[str, Any], shrunk, shrunk_digest: str
) -> Path:
    path = failing_path(out_dir, outcome["seed"], outcome["round"])
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": CHAOS_SCHEMA,
        "mode": outcome["mode"],
        "seed": outcome["seed"],
        "round": outcome["round"],
        "num_nodes": outcome["num_nodes"],
        "num_events": outcome["num_events"],
        "violations": outcome["violations"],
        "lost": outcome["lost"],
        "digest": outcome["digest"],
        "spec": outcome["spec"],
        "shrunk_spec": shrunk.spec,
        "shrunk_digest": shrunk_digest,
        "shrink": {
            "steps": shrunk.steps,
            "tested": shrunk.tested,
            "cache_hits": shrunk.cache_hits,
            "entries": [shrunk.initial_entries, shrunk.final_entries],
        },
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)
    return path


def replay_failing(path, runs: int = 2) -> int:
    """Replay a failing-schedule file deterministically.

    Runs the *shrunken* schedule ``runs`` times; every run must produce
    the identical round digest (and match the stored ``shrunk_digest``
    when present).  Returns a process exit code: 0 = reproduced
    bit-identically, 1 = digest mismatch (determinism broke), 2 = the
    file is unreadable.
    """
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read failing schedule {path}: {exc}")
        return 2
    task = {
        k: doc[k] for k in ("mode", "seed", "round", "num_nodes", "num_events")
    }
    spec = doc.get("shrunk_spec") or doc["spec"]
    digests = []
    for i in range(runs):
        out = run_round({**task, "spec": spec})
        digests.append(out["digest"])
        print(
            f"replay {i + 1}/{runs}: digest {out['digest'][:16]} "
            f"lost={out['lost']} dup={out['dup']} "
            f"violations={len(out['violations'])}"
        )
    if len(set(digests)) != 1:
        print("REPLAY DIVERGED: runs of one schedule produced different digests")
        return 1
    stored = doc.get("shrunk_digest")
    if stored and stored != digests[0]:
        print(
            f"REPLAY MISMATCH: stored digest {stored[:16]} != "
            f"replayed {digests[0][:16]} (the failure's behaviour changed)"
        )
        return 1
    print(f"replay ok: {runs} identical digests ({digests[0][:16]}...)")
    return 0


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def run_campaign(
    rounds: int = 25,
    seed: int = 42,
    mode: str = "durable",
    jobs: Optional[int] = None,
    out_dir: str = os.path.join("out", "chaos"),
) -> Dict[str, Any]:
    """Run ``rounds`` nemesis rounds; shrink and persist every failure.

    Returns a summary dict (also recorded in the ambient telemetry
    session's results under ``"chaos"``).
    """
    if mode not in ("durable", "best-effort"):
        raise ValueError(f"unknown chaos mode {mode!r}")
    num_nodes, num_events = _chaos_scale()
    jobs = resolve_jobs(jobs)
    t0 = time.perf_counter()

    tasks = [
        {
            "mode": mode,
            "seed": seed,
            "round": r,
            "num_nodes": num_nodes,
            "num_events": num_events,
        }
        for r in range(rounds)
    ]

    session = current_session()
    status_path = None
    if session is not None and session.out_dir is not None:
        from repro.telemetry.export import STATUS_FILENAME

        status_path = Path(session.out_dir) / STATUS_FILENAME

    def _emit_status(done: int, failing: int, finished: bool) -> None:
        if session is None or status_path is None:
            return
        from repro.telemetry.export import rss_bytes, write_status

        elapsed = time.perf_counter() - t0
        write_status(
            status_path,
            {
                "label": f"chaos[{mode}]",
                "pid": os.getpid(),
                "jobs": jobs,
                "points_total": rounds,
                "done": done,
                "executed": done,
                "store_hits": 0,
                "failed": failing,
                "events_done": done * num_events,
                "events_per_sec": (
                    done * num_events / elapsed if elapsed > 0 else 0.0
                ),
                "elapsed_seconds": elapsed,
                "rss_bytes": rss_bytes(),
                "workers": {},
                "finished": finished,
            },
        )

    # Rounds fan out in batches so the observatory sees progress while
    # the campaign runs (map_tasks itself is a single barrier).
    batch = max(jobs, 1)
    outcomes: List[Dict[str, Any]] = []
    failing: List[Dict[str, Any]] = []
    _emit_status(0, 0, False)
    for start in range(0, len(tasks), batch):
        chunk = tasks[start:start + batch]
        outcomes.extend(map_tasks(run_round, chunk, jobs=jobs, label="chaos"))
        failing = [o for o in outcomes if round_fails(o)]
        _emit_status(len(outcomes), len(failing), False)
        if session is not None:
            session.stream_snapshot(
                kind="chaos",
                done=len(outcomes),
                points_total=rounds,
                failing=len(failing),
            )

    # -- shrink + persist every failure --------------------------------
    root = store_root()
    shrink_store = (
        JsonDocStore(Path(root) / "chaos") if root is not None else None
    )
    failure_files: List[str] = []
    for out in failing:
        shrunk = shrink_failing_round(out, store=shrink_store)
        task = {
            k: out[k]
            for k in ("mode", "seed", "round", "num_nodes", "num_events")
        }
        shrunk_digest = run_round({**task, "spec": shrunk.spec})["digest"]
        path = write_failing(out_dir, out, shrunk, shrunk_digest)
        failure_files.append(str(path))
        why = "; ".join(out["violations"]) or f"lost {out['lost']}"
        print(
            f"round {out['round']}: FAILED ({why}); "
            f"shrunk {shrunk.initial_entries} -> {shrunk.final_entries} "
            f"entries in {shrunk.steps} steps "
            f"({shrunk.tested} candidates, {shrunk.cache_hits} cached) "
            f"-> {path}"
        )
    _emit_status(len(outcomes), len(failing), True)

    violations_total = sum(len(o["violations"]) for o in outcomes)
    rounds_with_loss = sum(1 for o in outcomes if o["lost"] > 0)
    summary = {
        "mode": mode,
        "seed": seed,
        "rounds": rounds,
        "num_nodes": num_nodes,
        "num_events": num_events,
        "violations_total": violations_total,
        "failing_rounds": len(failing),
        "rounds_with_loss": rounds_with_loss,
        "lost_total": sum(o["lost"] for o in outcomes),
        "dup_total": sum(o["dup"] for o in outcomes),
        "net_duplicated": sum(o["net_duplicated"] for o in outcomes),
        "net_reordered": sum(o["net_reordered"] for o in outcomes),
        "failure_files": failure_files,
        "wall_seconds": time.perf_counter() - t0,
        "outcomes": outcomes,
    }
    if session is not None:
        session.record_result(
            "chaos", {k: v for k, v in summary.items() if k != "outcomes"}
        )
    # Persist the full summary (outcomes included) next to any failing
    # schedules so a CI artifact of out_dir is self-describing.
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    (out_path / "summary.json").write_text(
        json.dumps(summary, indent=1, sort_keys=True)
    )
    return summary


def render_summary(summary: Dict[str, Any]) -> str:
    lines = [
        f"chaos campaign -- mode={summary['mode']} seed={summary['seed']} "
        f"({summary['rounds']} rounds x {summary['num_nodes']} nodes / "
        f"{summary['num_events']} events)",
        "",
        f"{'round':>5s} {'faults':>6s} {'lost':>5s} {'dup':>4s} "
        f"{'violations':>10s}  digest",
    ]
    for o in summary["outcomes"]:
        lines.append(
            f"{o['round']:5d} {len(o['spec']):6d} {o['lost']:5d} "
            f"{o['dup']:4d} {len(o['violations']):10d}  {o['digest'][:12]}"
        )
    lines.append("")
    lines.append(
        f"total: {summary['violations_total']} violations across "
        f"{summary['failing_rounds']} failing rounds; "
        f"{summary['rounds_with_loss']} rounds with loss "
        f"({summary['lost_total']} deliveries); "
        f"{summary['dup_total']} duplicate deliveries; "
        f"net duplicated {summary['net_duplicated']} / "
        f"reordered {summary['net_reordered']} packets "
        f"[{summary['wall_seconds']:.1f}s]"
    )
    if summary["failure_files"]:
        lines.append("failing schedules (shrunken, replayable with --replay):")
        lines.extend(f"  {p}" for p in summary["failure_files"])
    return "\n".join(lines)


def main(
    rounds: int = 25,
    seed: int = 42,
    mode: str = "durable",
    replay: Optional[str] = None,
    out_dir: str = os.path.join("out", "chaos"),
) -> int:
    """CLI body for ``python -m repro chaos`` (returns exit code)."""
    if replay is not None:
        return replay_failing(replay)
    summary = run_campaign(rounds=rounds, seed=seed, mode=mode, out_dir=out_dir)
    print(render_summary(summary))
    if mode == "durable" and summary["violations_total"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
