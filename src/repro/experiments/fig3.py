"""Figure 3: distribution of nodes w.r.t. in-node / out-node bandwidth.

Paper findings: without LB the tails are heavy (base 2 max in-bandwidth
~11000 KB vs 6639 KB with LB; base 4 is worse than base 2); dynamic
migration cuts the maxima substantially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.compare import ShapeReport
from repro.analysis.tables import format_cdf_table, format_table
from repro.experiments.common import (
    DeliveryResult,
    figure2_configs,
    scale_from_env,
)
from repro.runner import map_configs
from repro.sim.stats import Distribution


@dataclass
class Figure3Result:
    runs: List[DeliveryResult]
    report: ShapeReport

    def render(self) -> str:
        in_d = {r.label: Distribution.from_values(r.in_bw_kb) for r in self.runs}
        out_d = {r.label: Distribution.from_values(r.out_bw_kb) for r in self.runs}
        blocks = [
            format_cdf_table(
                in_d, value_name="config",
                title="Figure 3(a) -- per-node in-bandwidth (KB) at CDF percentiles",
            ),
            format_cdf_table(
                out_d, value_name="config",
                title="Figure 3(b) -- per-node out-bandwidth (KB) at CDF percentiles",
            ),
            format_table(
                ["config", "max in KB", "max out KB"],
                [[r.label, in_d[r.label].max, out_d[r.label].max] for r in self.runs],
                title="maxima (paper: in 11000/6639/14400/5225; out 5549/13900*/16882/9072)",
            ),
            self.report.render(),
        ]
        return "\n\n".join(blocks)


def check_shapes(runs: List[DeliveryResult]) -> ShapeReport:
    by_label = {r.label: r for r in runs}
    b2 = by_label["Base 2,level 20,no LB"]
    b2_lb = by_label["Base 2,level 20,LB"]
    b4 = by_label["Base 4,level 10,no LB"]
    b4_lb = by_label["Base 4,level 10,LB"]

    report = ShapeReport("Figure 3")
    # The paper's effect is relief of the overloaded surrogate: the
    # node that is hottest without LB must see its event traffic drop
    # once its subscriptions migrate.  (The global max/p99 is noisy at
    # sub-paper scale: one acceptor's relaying can transiently spike.)
    # A hot node that doubles as a Chord finger hub keeps its *relay*
    # traffic after migration; the matching traffic it sheds dominates
    # only at paper-scale node/event counts (at 1740 nodes the maxima
    # drop cleanly: in 757->542 KB, out 2703->1631 KB), so the slack is
    # tight there and generous below.
    paper_scale = b2.config.num_nodes >= 1200
    slack = 1.05 if paper_scale else 1.5
    for no_lb, with_lb, name in ((b2, b2_lb, "base 2"), (b4, b4_lb, "base 4")):
        # Rank by stored *real* subscriptions: markers do not migrate,
        # so a marker-heavy node's traffic is LB-invariant by design.
        hot = int(np.argmax(no_lb.sub_loads))
        before = float(no_lb.in_bw_kb[hot] + no_lb.out_bw_kb[hot])
        after = float(with_lb.in_bw_kb[hot] + with_lb.out_bw_kb[hot])
        report.expect_less(
            after, before, f"LB does not add traffic at the overloaded "
            f"surrogate ({name})", slack=slack,
        )
    report.expect_greater(
        b4.in_bw_kb.max(), b2.in_bw_kb.max() * 0.7,
        "base 4 at least as imbalanced as base 2 (no LB)",
    )
    report.expect_true(
        bool((b2.in_bw_kb.max() > 5 * max(b2.in_bw_kb.mean(), 1e-9))),
        "no-LB in-bandwidth tail is heavy (max >> mean)",
        f"max {b2.in_bw_kb.max():.0f} vs mean {b2.in_bw_kb.mean():.1f}",
    )
    return report


def run(num_nodes: int | None = None, num_events: int | None = None) -> Figure3Result:
    n, e = scale_from_env()
    runs = map_configs(
        figure2_configs(num_nodes or n, num_events or e), label="fig3"
    )
    return Figure3Result(runs=runs, report=check_shapes(runs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
