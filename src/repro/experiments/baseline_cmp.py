"""Experiment B1 (extension): HyperSub vs Meghdoot vs central rendezvous.

The paper argues qualitatively against both designs (Section 2):
Meghdoot's CAN has dimensionality 2d and floods an affected region that
grows with the match set; the Ferry-style central rendezvous
concentrates all storage and matching on one node.  This experiment
runs all three systems on the *same* topology, workload and byte
accounting and reports delivery cost plus node-load concentration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.analysis.compare import ShapeReport
from repro.analysis.tables import format_table
from repro.baselines import (
    CentralRendezvousSystem,
    MeghdootSystem,
    ScribeContentSystem,
)
from repro.core.config import HyperSubConfig
from repro.core.system import HyperSubSystem
from repro.experiments.common import scale_from_env
from repro.runner import map_tasks
from repro.sim.topology import KingLikeTopology
from repro.workloads import WorkloadGenerator, default_paper_spec


@dataclass
class SystemSummary:
    name: str
    avg_matched: float
    avg_max_hops: float
    avg_max_latency_ms: float
    avg_kb_per_event: float
    max_store_load: int
    mean_store_load: float
    max_in_bw_kb: float
    #: hottest node's share of all event-phase traffic (in+out bytes)
    traffic_concentration: float

    def row(self) -> List[object]:
        return [
            self.name,
            self.avg_matched,
            self.avg_max_hops,
            self.avg_max_latency_ms,
            self.avg_kb_per_event,
            self.max_store_load,
            self.max_in_bw_kb,
            self.traffic_concentration,
        ]


@dataclass
class BaselineResult:
    summaries: List[SystemSummary]
    report: ShapeReport

    def render(self) -> str:
        table = format_table(
            [
                "system", "avg matched", "avg max hops", "avg max latency ms",
                "avg KB/event", "max stored subs", "max in-bw KB",
                "hot-node traffic share",
            ],
            [s.row() for s in self.summaries],
            title="B1 -- HyperSub vs baselines (same topology/workload/bytes)",
        )
        return "\n\n".join([table, self.report.render()])


def _summarise(name, metrics, loads, in_bw_kb, out_bw_kb) -> SystemSummary:
    recs = list(metrics.records.values())
    traffic = in_bw_kb + out_bw_kb
    total = float(traffic.sum())
    return SystemSummary(
        name=name,
        avg_matched=float(np.mean([r.matched for r in recs])),
        avg_max_hops=float(np.mean([r.max_hops for r in recs])),
        avg_max_latency_ms=float(np.mean([r.max_latency_ms for r in recs])),
        avg_kb_per_event=float(np.mean([r.bytes for r in recs]) / 1024.0),
        max_store_load=int(loads.max()),
        mean_store_load=float(loads.mean()),
        max_in_bw_kb=float(in_bw_kb.max()),
        traffic_concentration=float(traffic.max() / total) if total else 0.0,
    )


def _run_baseline_system(args: Tuple[str, int, int]) -> SystemSummary:
    """Build, load and drive one system (top-level: pool-picklable).

    Every system shares a topology seed and an identical workload
    stream (same generator seed => same subscriptions and events), so
    the four summaries are comparable no matter which process computed
    them.
    """
    which, num_nodes, num_events = args
    spec = default_paper_spec()
    gen = WorkloadGenerator(spec, seed=7)
    topo = KingLikeTopology(num_nodes, seed=1)

    if which == "hypersub":
        hs = HyperSubSystem(
            topology=topo,
            config=HyperSubConfig(base=2, seed=1, direct_rendezvous_levels=8),
        )
        hs.add_scheme(gen.scheme)
        gen.populate(hs)
        hs.finish_setup()
        gen.schedule_events(hs, count=num_events)
        hs.run_until_idle()
        return _summarise(
            "HyperSub (base 2)", hs.metrics, hs.node_loads(),
            hs.in_bandwidth_kb(), hs.out_bandwidth_kb(),
        )

    name, system = {
        "meghdoot": ("Meghdoot (CAN 8-d)", MeghdootSystem),
        "central": ("Central rendezvous", CentralRendezvousSystem),
        "scribe": ("Scribe topics (Tam)", ScribeContentSystem),
    }[which]
    sys_ = system(gen.scheme, topology=topo)
    for addr in range(num_nodes):
        for _ in range(spec.subs_per_node):
            sys_.subscribe(addr, gen.subscription())
    sys_.finish_setup()
    gen.schedule_events(sys_, count=num_events)
    sys_.run_until_idle()
    return _summarise(
        name, sys_.metrics, sys_.node_loads(),
        sys_.network.stats.in_bytes / 1024.0,
        sys_.network.stats.out_bytes / 1024.0,
    )


def run(num_nodes: int | None = None, num_events: int | None = None) -> BaselineResult:
    n, e = scale_from_env()
    num_nodes = num_nodes or n
    num_events = num_events or e

    # The four systems are independent: fan them out over the runner's
    # process pool (REPRO_JOBS / --jobs), in a fixed comparison order.
    summaries: List[SystemSummary] = map_tasks(
        _run_baseline_system,
        [
            (which, num_nodes, num_events)
            for which in ("hypersub", "meghdoot", "central", "scribe")
        ],
        label="baselines",
    )

    hs_s, mg_s, cv_s, sc_s = summaries
    report = ShapeReport("B1 baselines")
    report.expect_true(
        abs(hs_s.avg_matched - cv_s.avg_matched) < 0.05 * max(cv_s.avg_matched, 1),
        "all systems deliver the same match set (vs central oracle)",
        f"{hs_s.avg_matched:.2f} vs {cv_s.avg_matched:.2f}",
    )
    report.expect_less(
        hs_s.max_store_load, cv_s.max_store_load,
        "HyperSub distributes storage (central = all subs on one node)",
    )
    report.expect_less(
        hs_s.traffic_concentration, cv_s.traffic_concentration,
        "HyperSub concentrates less traffic on its hottest node than the "
        "central design (scalability argument)",
    )
    report.expect_less(
        hs_s.avg_max_latency_ms, mg_s.avg_max_latency_ms * 2.5,
        "HyperSub latency competitive with Meghdoot",
    )
    report.expect_true(
        abs(sc_s.avg_matched - cv_s.avg_matched) < 0.05 * max(cv_s.avg_matched, 1),
        "Scribe adapter also delivers the exact match set",
        f"{sc_s.avg_matched:.2f} vs {cv_s.avg_matched:.2f}",
    )
    report.expect_less(
        hs_s.avg_kb_per_event, sc_s.avg_kb_per_event,
        "content-based routing beats topic discretisation on bandwidth "
        "(Scribe transports false positives)",
    )
    return BaselineResult(summaries=summaries, report=report)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
