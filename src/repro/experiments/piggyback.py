"""Experiment P1 (extension): piggybacked DHT maintenance.

Paper Section 6: "we also need to investigate how the underlying DHT
can benefit from HyperSub to reduce the DHT link maintenance cost by
piggybacking the DHT maintenance messages onto event delivery
messages."  Implemented: every event packet can carry the sender's
(id, predecessor, first successor); receivers absorb it as an implicit
notify plus liveness proof, so Chord skips the dedicated
``check_predecessor`` ping and, when the data came from the successor
itself, the ``stabilize`` RPC pair.

The experiment runs the same event stream over a maintained overlay
with piggybacking on and off and compares:

* dedicated maintenance bytes (the ``chord_*`` message kinds);
* the piggyback overhead added to event packets;
* delivery results (must be identical -- piggybacking is transparent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.compare import ShapeReport
from repro.analysis.tables import format_table
from repro.core.config import HyperSubConfig
from repro.core.system import HyperSubSystem
from repro.sim.messages import PIGGYBACK_BYTES
from repro.workloads import WorkloadGenerator, default_paper_spec

#: Message kinds replaced by piggybacked state.
MAINTENANCE_KINDS = (
    "chord_get_state",
    "chord_state_reply",
    "chord_notify",
    "chord_ping",
    "chord_pong",
)


@dataclass
class PiggybackResult:
    rows: List[List[object]]
    maintenance_bytes: Dict[bool, float]
    piggyback_overhead_bytes: float
    report: ShapeReport

    def render(self) -> str:
        return "\n\n".join(
            [
                format_table(
                    ["piggyback", "maintenance KB", "event KB", "deliveries"],
                    self.rows,
                    title="P1 -- dedicated maintenance traffic with/without "
                    "piggybacking (same event stream)",
                ),
                self.report.render(),
            ]
        )


def _run_once(piggyback: bool, num_nodes: int, num_events: int):
    # The interesting regime is the realistic one -- maintenance at
    # production rates (seconds) under a dense event stream, so most
    # links carry application traffic between maintenance rounds.
    from dataclasses import replace as dc_replace

    spec = default_paper_spec(subs_per_node=5)
    spec = dc_replace(spec, mean_interarrival_ms=10.0)
    gen = WorkloadGenerator(spec, seed=7)
    cfg = HyperSubConfig(seed=1, piggyback_maintenance=piggyback)
    system = HyperSubSystem(num_nodes=num_nodes, config=cfg)
    system.add_scheme(gen.scheme)
    gen.populate(system)
    system.finish_setup()
    for node in system.nodes:
        node.stabilize_interval_ms = 2_000.0
        node.rpc_timeout_ms = 4_000.0
        node.fingers_per_fix = 0  # steady state: fingers are correct
        node.start_maintenance()
    gen.schedule_events(system, count=num_events)
    horizon = system.sim.now + num_events * spec.mean_interarrival_ms + 10_000
    system.run(until=horizon)
    for node in system.nodes:
        node.stop_maintenance()
    system.run_until_idle()

    by_kind = system.network.stats.bytes_by_kind
    maintenance = sum(by_kind.get(k, 0.0) for k in MAINTENANCE_KINDS)
    event_bytes = by_kind.get("ps_event", 0.0)
    deliveries = sum(r.matched for r in system.metrics.records.values())
    matched_sig = sorted(r.matched for r in system.metrics.records.values())
    return maintenance, event_bytes, deliveries, matched_sig


def run(num_nodes: int = 300, num_events: int = 400) -> PiggybackResult:
    rows: List[List[object]] = []
    data = {}
    for pb in (False, True):
        maintenance, event_bytes, deliveries, sig = _run_once(
            pb, num_nodes, num_events
        )
        data[pb] = (maintenance, event_bytes, deliveries, sig)
        rows.append(
            ["on" if pb else "off", maintenance / 1024.0, event_bytes / 1024.0, deliveries]
        )

    report = ShapeReport("P1 piggybacked maintenance")
    report.expect_true(
        data[False][3] == data[True][3],
        "delivery results identical with piggybacking",
        f"{data[False][2]} vs {data[True][2]} deliveries",
    )
    report.expect_less(
        data[True][0], data[False][0] * 0.9,
        "piggybacking cuts dedicated maintenance traffic by >10%",
    )
    overhead = data[True][1] - data[False][1]
    saved = data[False][0] - data[True][0]
    report.expect_less(
        overhead, saved,
        "piggyback overhead is below the maintenance bytes it saves",
    )
    return PiggybackResult(
        rows=rows,
        maintenance_bytes={k: v[0] for k, v in data.items()},
        piggyback_overhead_bytes=overhead,
        report=report,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
