"""Table 2: simulated networks and average RTTs.

The paper derives networks of 2k-16k nodes from the King data and
reports each network's average RTT.  Our King-like topology calibrates
every size to the King mean (~180 ms), so the measured row should be
flat around 180 ms -- the table demonstrates the latency substrate the
scalability sweep (Figure 5) runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.compare import ShapeReport
from repro.analysis.tables import format_series
from repro.runner import map_tasks
from repro.sim.topology import KingLikeTopology

#: Network sizes (x 10^3) of the paper's scalability experiments.
PAPER_SIZES_K: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16)


def _rtt_point(args: Tuple[int, int]) -> float:
    """Mean RTT of one simulated network (top-level: pool-picklable)."""
    size, seed = args
    return KingLikeTopology(size, seed=seed).mean_rtt(30_000)


@dataclass
class Table2Result:
    sizes: List[int]
    avg_rtts: List[float]
    report: ShapeReport

    def render(self) -> str:
        series = {"Avg RTT (ms)": self.avg_rtts}
        return "\n\n".join(
            [
                format_series(
                    "Size (x10^3)",
                    [s / 1000 for s in self.sizes],
                    series,
                    title="Table 2 -- simulated networks and avg RTTs "
                    "(paper: King-derived, ~180 ms)",
                ),
                self.report.render(),
            ]
        )


def run(sizes: Sequence[int] | None = None, seed: int = 1) -> Table2Result:
    sizes = list(sizes or [k * 1000 for k in PAPER_SIZES_K])
    # Each network is built and measured independently; fan the sizes
    # out over the runner's process pool (REPRO_JOBS / --jobs).
    avg = map_tasks(_rtt_point, [(n, seed) for n in sizes], label="table2")
    report = ShapeReport("Table 2")
    for n, rtt in zip(sizes, avg):
        report.expect_within(
            rtt, 150.0, 210.0, f"{n}-node network mean RTT near King's 180 ms"
        )
    return Table2Result(sizes=sizes, avg_rtts=avg, report=report)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
