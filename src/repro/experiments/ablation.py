"""Experiment A1 (extension): ablations of HyperSub's design choices.

Each ablation isolates one mechanism DESIGN.md calls out:

* **PNS** -- proximity neighbour selection (Chord-PNS vs plain Chord):
  should cut delivery latency at identical hop counts.
* **Rotation** -- zone-mapping rotation across schemes: should spread
  co-located hot zones of multiple schemes over distinct nodes.
* **Subscheme splitting** (Section 3.5) -- with subscriptions that leave
  attributes unspecified, splitting should deepen zone placement and
  reduce the load concentrated on shallow-zone surrogates.
* **Direct-rendezvous radius R** -- the reproduction's cascade-control
  knob: identical deliveries for any R, with the documented state /
  per-event-entry trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.compare import ShapeReport
from repro.analysis.tables import format_table
from repro.core.config import HyperSubConfig
from repro.core.scheme import Attribute, Scheme
from repro.core.subscription import Predicate, Subscription
from repro.core.system import HyperSubSystem
from repro.experiments.common import DeliveryConfig, scale_from_env
from repro.runner import map_configs


@dataclass
class AblationResult:
    rows: List[List[object]]
    report: ShapeReport

    def render(self) -> str:
        table = format_table(
            ["ablation", "variant", "metric", "value"],
            self.rows,
            title="A1 -- design-choice ablations",
        )
        return "\n\n".join([table, self.report.render()])


def run(num_nodes: int | None = None, num_events: int | None = None) -> AblationResult:
    n, e = scale_from_env()
    num_nodes = num_nodes or n
    num_events = num_events or e
    rows: List[List[object]] = []
    report = ShapeReport("A1 ablations")

    # ---- delivery-config points, one runner batch -----------------------
    # PNS on/off plus the three direct-rendezvous radii are independent
    # DeliveryConfig points; one map_configs call lets the process pool
    # (and the result store) handle all five.  The runner dedupes the
    # PNS-on point against R=8 (they are the same configuration).
    r_levels = (0, 8, 20)
    delivery_cfgs = [
        DeliveryConfig(num_nodes=num_nodes, num_events=num_events, pns=True),
        DeliveryConfig(num_nodes=num_nodes, num_events=num_events, pns=False),
    ] + [
        DeliveryConfig(
            num_nodes=num_nodes, num_events=num_events,
            direct_rendezvous_levels=r_level,
        )
        for r_level in r_levels
    ]
    delivery_runs = map_configs(delivery_cfgs, label="ablation")
    pns_on, pns_off = delivery_runs[0], delivery_runs[1]
    r_runs = dict(zip(r_levels, delivery_runs[2:]))

    # ---- PNS on/off -----------------------------------------------------
    rows += [
        ["PNS", "on", "avg max latency ms", pns_on.max_latency_ms.mean],
        ["PNS", "off", "avg max latency ms", pns_off.max_latency_ms.mean],
        ["PNS", "on", "avg max hops", pns_on.max_hops.mean],
        ["PNS", "off", "avg max hops", pns_off.max_hops.mean],
    ]
    report.expect_less(
        pns_on.max_latency_ms.mean, pns_off.max_latency_ms.mean,
        "PNS reduces delivery latency",
    )
    report.expect_within(
        pns_on.max_hops.mean / max(pns_off.max_hops.mean, 1e-9), 0.8, 1.2,
        "PNS leaves hop counts roughly unchanged",
    )

    # ---- direct-rendezvous radius R --------------------------------------
    for r_level in r_levels:
        rows += [
            ["R (direct rendezvous)", str(r_level), "stored entries",
             int(r_runs[r_level].loads.sum())],
            ["R (direct rendezvous)", str(r_level), "avg KB/event",
             r_runs[r_level].bandwidth_kb.mean],
        ]
    report.expect_true(
        r_runs[0].matched_counts.mean == r_runs[8].matched_counts.mean
        == r_runs[20].matched_counts.mean,
        "delivery identical for every R",
        f"means {[r_runs[k].matched_counts.mean for k in (0, 8, 20)]}",
    )
    report.expect_less(
        float(r_runs[8].loads.sum()), float(r_runs[0].loads.sum()),
        "R=8 stores fewer surrogate subscriptions than the full cascade",
    )

    # ---- Rotation (multi-scheme hotspot spreading) ------------------------
    rot_loads = {}
    for rotation in (True, False):
        cfg = HyperSubConfig(seed=1, code_bits=20, rotation=rotation,
                             direct_rendezvous_levels=8)
        system = HyperSubSystem(num_nodes=min(num_nodes, 300), config=cfg)
        schemes = [
            Scheme(f"s{i}", [Attribute(a, 0, 10_000) for a in "abcd"])
            for i in range(5)
        ]
        rng = np.random.default_rng(3)
        for sc in schemes:
            system.add_scheme(sc)
            for _ in range(40):
                # Straddling subscriptions: identical shallow zone per scheme.
                sub = Subscription.from_box(
                    sc, [4500] * 4, [5500] * 4
                )
                system.subscribe(int(rng.integers(0, len(system.nodes))), sub)
        system.finish_setup()
        real = np.array(
            [node.stored_subscription_count("sub") for node in system.nodes]
        )
        rot_loads[rotation] = real
        rows.append(
            ["rotation", "on" if rotation else "off", "max real-sub load", int(real.max())]
        )
    report.expect_less(
        float(rot_loads[True].max()), float(rot_loads[False].max()),
        "rotation spreads multi-scheme hot zones",
    )

    # ---- Subscheme splitting (Section 3.5) --------------------------------
    # R = max_level (no cascade) so the comparison isolates *placement*:
    # Section 3.5 is about where partially-specified subscriptions land,
    # not about surrogate-subscription state (a subscheme's deeper
    # per-dimension tree legitimately stores more markers per sub).
    split_stats = {}
    for split in (True, False):
        cfg = HyperSubConfig(seed=1, code_bits=20, direct_rendezvous_levels=20)
        system = HyperSubSystem(num_nodes=min(num_nodes, 300), config=cfg)
        scheme = Scheme("s", [Attribute(a, 0, 10_000) for a in "abcd"])
        system.add_scheme(
            scheme, subschemes=[["a", "b"], ["c", "d"]] if split else None
        )
        rng = np.random.default_rng(4)
        levels = []
        for _ in range(600):
            # Subscribers only constrain half the attributes -- the
            # behaviour Section 3.5 exists for.
            attrs = ["a", "b"] if rng.random() < 0.5 else ["c", "d"]
            c = float(rng.normal(3000, 400) % 9500)
            preds = [Predicate(x, c, c + 300) for x in attrs]
            sub = Subscription(scheme, preds)
            system.subscribe(int(rng.integers(0, len(system.nodes))), sub)
            ent = system.entity_for_subscription(sub)
            levels.append(ent.zone_of_subscription(sub).level)
        system.finish_setup()
        real = np.array(
            [node.stored_subscription_count("sub") for node in system.nodes]
        )
        split_stats[split] = {
            "mean_level": float(np.mean(levels)),
            "max_load": int(real.max()),
        }
        rows += [
            ["subscheme split", "on" if split else "off", "mean zone level",
             split_stats[split]["mean_level"]],
            ["subscheme split", "on" if split else "off", "max real-sub load",
             split_stats[split]["max_load"]],
        ]
    report.expect_greater(
        split_stats[True]["mean_level"], split_stats[False]["mean_level"] + 1.0,
        "splitting deepens zone placement for partially-specified subs",
    )
    report.expect_less(
        float(split_stats[True]["max_load"]),
        float(split_stats[False]["max_load"]),
        "splitting reduces shallow-zone load concentration",
    )

    return AblationResult(rows=rows, report=report)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
