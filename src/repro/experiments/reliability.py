"""Experiment R1 (extension): delivery under message loss.

The paper's simulator never drops packets, so Algorithm 5 is
fire-and-forget.  Real wide-area links lose packets; this experiment
injects an i.i.d. loss window through a :class:`~repro.faults.
FaultSchedule` and sweeps it against two transports:

* **fire-and-forget** (the paper's): delivery ratio decays roughly as
  ``(1-p)^h`` per h-hop path;
* **reliable** (extension): per-hop ack + retransmission with
  receiver-side de-duplication recovers every delivery, paying for it
  in retransmitted bytes -- now visible in the
  ``NetworkStats.retransmissions`` / ``gave_up`` counters.

A global-knowledge invariant check (ring consistency + zone coverage)
runs at the end of every arm: message loss must never corrupt state,
only delay or drop deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.compare import ShapeReport
from repro.analysis.tables import format_series
from repro.core.config import HyperSubConfig
from repro.core.system import HyperSubSystem
from repro.faults import FaultSchedule
from repro.workloads import WorkloadGenerator, default_paper_spec


@dataclass
class ReliabilityResult:
    loss_rates: List[float]
    plain_ratio: List[float]
    reliable_ratio: List[float]
    reliable_byte_overhead: List[float]
    retransmissions: List[int]
    gave_up: List[int]
    report: ShapeReport

    def render(self) -> str:
        return "\n\n".join(
            [
                format_series(
                    "loss rate",
                    self.loss_rates,
                    {
                        "fire-and-forget ratio": self.plain_ratio,
                        "reliable ratio": self.reliable_ratio,
                        "reliable byte overhead x": self.reliable_byte_overhead,
                        "retransmissions": self.retransmissions,
                        "packets abandoned": self.gave_up,
                    },
                    title="R1 -- delivery under injected message loss",
                ),
                self.report.render(),
            ]
        )


def _one_run(loss: float, reliable: bool, num_nodes: int, num_events: int):
    spec = default_paper_spec(subs_per_node=5)
    gen = WorkloadGenerator(spec, seed=7)
    cfg = HyperSubConfig(
        seed=1,
        reliable_delivery=reliable,
        retransmit_timeout_ms=1_500.0,
        # Bounded retries give at-least-once w.h.p.; at 10% loss,
        # P(give-up) = p^(1+retries), so 5 retries push the expected
        # number of lost packets per run well below one.
        max_retries=5,
    )
    system = HyperSubSystem(num_nodes=num_nodes, config=cfg)
    system.add_scheme(gen.scheme)
    installed = gen.populate(system)
    system.finish_setup()
    FaultSchedule().loss(0.0, loss, seed=9).install(system)

    rng = np.random.default_rng(3)
    delivered = expected = 0
    for _ in range(num_events):
        ev = gen.event()
        eid = system.publish(int(rng.integers(0, num_nodes)), ev)
        system.run_until_idle()
        rec = system.metrics.records[eid]
        got = {(d[0].nid, d[0].iid) for d in rec.deliveries}
        want = {(sid.nid, sid.iid) for s, sid in installed if s.matches(ev)}
        delivered += len(got & want)
        expected += len(want)
    stats = system.network.stats
    bytes_total = float(stats.bytes_by_kind.get("ps_event", 0.0))
    invariants_ok = system.check_invariants().ok
    return (
        delivered / max(expected, 1),
        bytes_total,
        stats.retransmissions,
        stats.gave_up,
        invariants_ok,
    )


def run(
    num_nodes: int = 150,
    num_events: int = 150,
    loss_rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
) -> ReliabilityResult:
    plain, reliable, overhead = [], [], []
    retrans, gave_up = [], []
    invariants_ok = True
    for p in loss_rates:
        r_plain, b_plain, _, _, inv_p = _one_run(p, False, num_nodes, num_events)
        r_rel, b_rel, n_retrans, n_gave, inv_r = _one_run(
            p, True, num_nodes, num_events
        )
        plain.append(r_plain)
        reliable.append(r_rel)
        overhead.append(b_rel / max(b_plain, 1e-9))
        retrans.append(n_retrans)
        gave_up.append(n_gave)
        invariants_ok = invariants_ok and inv_p and inv_r

    report = ShapeReport("R1 reliability")
    report.expect_within(plain[0], 0.999, 1.0, "no loss: fire-and-forget exact")
    report.expect_less(
        plain[-1], 0.95,
        f"fire-and-forget loses deliveries at {loss_rates[-1]:.0%} loss",
    )
    for p, r in zip(loss_rates, reliable):
        report.expect_within(
            r, 0.999, 1.0, f"reliable transport exact at {p:.0%} loss"
        )
    report.expect_less(
        overhead[-1], 2.0,
        "retransmission overhead stays below 2x bytes at the worst loss",
    )
    report.expect_true(
        retrans[0] == 0 and retrans[-1] > 0,
        "retransmission counter tracks injected loss",
    )
    report.expect_true(
        invariants_ok, "ring/coverage invariants hold under loss"
    )
    return ReliabilityResult(
        loss_rates=list(loss_rates),
        plain_ratio=plain,
        reliable_ratio=reliable,
        reliable_byte_overhead=overhead,
        retransmissions=retrans,
        gave_up=gave_up,
        report=report,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
