"""Run provenance: the manifest written next to every experiment's output.

A number without its provenance is a rumor.  The manifest records
everything needed to reproduce and interpret one telemetry-enabled
invocation: the command line, git revision, library versions, every
system configuration built during the run, the workload specification,
final metric values (and histogram summaries), per-experiment result
summaries, the wall-clock profile, and where the span trace lives.

``validate_manifest`` is the CI gate: it returns a list of problems
(empty = good) so a workflow step can assert a fresh manifest parses
and carries the metrics the observability layer promises.
"""

from __future__ import annotations

import json
import platform
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Metric names every telemetry-enabled pub/sub run must publish.
#: (Presence is asserted, not values: a healthy run may well have zero
#: retransmissions.)
REQUIRED_METRICS = (
    "events.published",
    "transport.retransmissions",
    "transport.gave_up",
    "transport.gave_up.retries",
    "transport.gave_up.failover",
    "transport.gave_up.ttl",
    "transport.gave_up.shed",
    "repair.bytes",
    "node.load_imbalance",
    "zone.occupancy",
    "net.dropped",
    "faults.shed",
    "breaker.open",
    "queue.depth",
    "queue.depth.peak",
    "mem.bytes_per_node",
    "durable.appends",
    "durable.acked",
    "durable.redelivered",
    "durable.truncated",
    "durable.reorder_overflow",
)

#: Top-level keys ``validate_manifest`` insists on.
REQUIRED_KEYS = (
    "created_utc",
    "command",
    "label",
    "git_rev",
    "versions",
    "runs",
    "metrics",
    "trace_file",
    "trace_spans",
)


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit hash, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def versions() -> Dict[str, Any]:
    import os

    import numpy

    # machine/cpu_count/python_version make points from different
    # environments comparable (or visibly incomparable) -- the perf
    # trajectory's --compare gate keys on them.
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def write_manifest(path, manifest: Dict[str, Any]) -> None:
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )


def load_manifest(path) -> Dict[str, Any]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def merge_manifests(manifests: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Combine several (worker) manifests into one aggregate view.

    Used by the parallel sweep runner: each pool worker runs under its
    own :class:`~repro.telemetry.session.TelemetrySession` and ships its
    manifest back to the parent.  Merge semantics:

    * ``runs`` / ``results`` / ``extra`` -- concatenated / key-merged;
    * counters -- summed (they are per-run tallies);
    * gauges -- element-wise max (a conservative "worst seen" view);
    * histograms -- total ``n`` plus max-of-max (exact percentiles are
      not recoverable from summaries; the per-worker manifests keep
      them);
    * ``snapshots`` -- streamed metric snapshots, concatenated in time
      order (see ``repro.telemetry.export``);
    * ``wall_seconds`` -- summed (total compute), with the per-worker
      values preserved under ``worker_wall_seconds``.
    """
    from repro.telemetry.export import merge_snapshots

    merged: Dict[str, Any] = {
        "runs": [],
        "results": {},
        "extra": {},
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "snapshots": [],
        "wall_seconds": 0.0,
        "worker_wall_seconds": [],
        "workers": len(manifests),
    }
    counters = merged["metrics"]["counters"]
    gauges = merged["metrics"]["gauges"]
    histograms = merged["metrics"]["histograms"]
    for m in manifests:
        merged["runs"].extend(m.get("runs", []))
        merged["results"].update(m.get("results", {}))
        merged["extra"].update(m.get("extra", {}))
        wall = float(m.get("wall_seconds", 0.0))
        merged["wall_seconds"] += wall
        merged["worker_wall_seconds"].append(wall)
        metrics = m.get("metrics", {})
        for name, value in metrics.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in metrics.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, summ in metrics.get("histograms", {}).items():
            agg = histograms.setdefault(name, {"n": 0, "max": 0.0})
            agg["n"] += int(summ.get("n", 0))
            agg["max"] = max(agg["max"], float(summ.get("max", 0.0)))
        merged["snapshots"] = merge_snapshots(
            merged["snapshots"], m.get("snapshots", [])
        )
    return merged


def validate_manifest(manifest: Dict[str, Any]) -> List[str]:
    """Structural check; returns human-readable problems (empty = OK)."""
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in manifest:
            problems.append(f"missing top-level key {key!r}")
    metrics = manifest.get("metrics", {})
    if not isinstance(metrics, dict):
        problems.append("metrics block is not a mapping")
        return problems
    known = set(metrics.get("counters", {})) | set(metrics.get("gauges", {}))
    if manifest.get("runs"):
        # Only pub/sub runs publish the delivery metrics; a manifest for
        # e.g. a pure-analysis command legitimately has no systems.
        for name in REQUIRED_METRICS:
            if name not in known:
                problems.append(f"required metric {name!r} absent")
    return problems
