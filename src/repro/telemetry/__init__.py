"""``repro.telemetry`` -- observability for every experiment.

Four pieces, one session:

* :class:`MetricsRegistry` -- named counters / gauges / histograms with
  sim-time series sampling (``repro.telemetry.registry``);
* :class:`Tracer` -- causal span tracing of publish -> forward ->
  match -> deliver chains, JSONL export (``repro.telemetry.tracing``);
* :class:`Profiler` -- wall-clock totals for the matching/routing hot
  paths (``repro.telemetry.profiler``);
* the run **manifest** -- config, seed, git rev, workload, metric
  summaries written next to every output (``repro.telemetry.manifest``).

See docs/OBSERVABILITY.md for the metric catalogue and trace schema.
"""

from repro.telemetry.export import (
    SnapshotStreamer,
    make_snapshot,
    merge_snapshots,
    read_snapshots,
    render_top,
)
from repro.telemetry.manifest import (
    REQUIRED_METRICS,
    load_manifest,
    merge_manifests,
    validate_manifest,
    write_manifest,
)
from repro.telemetry.memory import (
    MemoryReport,
    deep_sizeof,
    measure_system,
    publish_memory,
    rss_bytes,
)
from repro.telemetry.profiler import Profiler
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.session import (
    TelemetrySession,
    current_session,
    set_session,
    telemetry_session,
)
from repro.telemetry.tracing import (
    Span,
    Tracer,
    edges_from_spans,
    read_jsonl,
    render_span_tree,
    spans_for_event,
)

__all__ = [
    "REQUIRED_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MemoryReport",
    "MetricsRegistry",
    "Profiler",
    "SnapshotStreamer",
    "Span",
    "TelemetrySession",
    "Tracer",
    "current_session",
    "deep_sizeof",
    "edges_from_spans",
    "load_manifest",
    "make_snapshot",
    "measure_system",
    "merge_manifests",
    "merge_snapshots",
    "publish_memory",
    "read_jsonl",
    "read_snapshots",
    "render_span_tree",
    "render_top",
    "rss_bytes",
    "set_session",
    "spans_for_event",
    "telemetry_session",
    "validate_manifest",
    "write_manifest",
]
