"""Wall-clock profiling of the simulator's hot paths.

Simulated time tells you what the *protocol* costs; wall-clock time
tells you what the *simulator* costs -- which is what the ROADMAP's
"as fast as the hardware allows" push needs to see.  The profiler
accumulates per-phase totals (``match`` = Algorithm 5 local matching,
``route`` = overlay next-hop/LPH lookup, plus anything an experiment
wraps in :meth:`Profiler.timeit`) with negligible overhead: one
``perf_counter`` pair per timed call, and zero cost when telemetry is
disabled because the call sites guard on the session being present.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator


class Profiler:
    """Per-phase wall-clock accumulator."""

    __slots__ = ("seconds", "calls")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @contextmanager
    def timeit(self, phase: str) -> Iterator[None]:
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add(phase, perf_counter() - t0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for phase in sorted(self.seconds):
            n = self.calls[phase]
            s = self.seconds[phase]
            out[phase] = {
                "calls": n,
                "seconds": s,
                "us_per_call": (s / n) * 1e6 if n else 0.0,
            }
        return out

    def render(self) -> str:
        if not self.seconds:
            return "profile: (no samples)"
        lines = [f"{'phase':24s} {'calls':>10s} {'total s':>9s} {'us/call':>9s}"]
        for phase, row in self.summary().items():
            lines.append(
                f"{phase:24s} {row['calls']:10d} {row['seconds']:9.3f} "
                f"{row['us_per_call']:9.2f}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()
