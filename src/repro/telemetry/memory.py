"""Memory accounting: per-subsystem footprints of a live system.

ROADMAP item 1 (10^5-10^6 simulated nodes) gates on one number nothing
previously measured: **bytes per node**.  This module walks a live
:class:`~repro.core.system.HyperSubSystem` and attributes its heap
footprint to the subsystems that own it -- subscription tables, zone
repositories, overlay routing state, the reliable transport, the route
cache, durable custody logs, the simulator's event queue and the
network fabric -- so a scale PR can see *which* table is the ceiling,
not just that the process grew.

Two entry points:

* :func:`measure_system` -- one :class:`MemoryReport` (pure, no
  telemetry needed);
* :func:`publish_memory` -- measure and publish every component as a
  registry gauge (``mem.bytes_per_node``, ``mem.total_bytes``,
  ``mem.<component>``, ``proc.rss_bytes``), which is how the number
  reaches run manifests, the streaming exporter and the tracked perf
  trajectory (``python -m repro bench``).

Accounting is a deterministic deep ``sys.getsizeof`` walk with a
shared seen-set (an object referenced from two tables is charged to
whichever component reaches it first, never twice).  On deployments
larger than ``node_sample`` nodes the per-node tables of an evenly
spaced node sample are measured and scaled -- the walk stays O(sample)
while the report stays honest about it (``sampled_nodes``).
"""

from __future__ import annotations

import sys
import types
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set

import numpy as np

#: Leaf types: sized, never entered.
_ATOMIC = (
    type(None), bool, int, float, complex, str, bytes, bytearray, range,
)

#: Callable / definition objects: traversing them would pull in module
#: globals and class dicts -- charge their own size and stop.
_OPAQUE = (
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    types.ModuleType,
    types.GeneratorType,
    type,
)

#: Default cap on per-node table sampling (see module docstring).
DEFAULT_NODE_SAMPLE = 128

#: Safety valve on total objects visited by one measurement; a report
#: that hits it is flagged ``truncated`` rather than hanging a sweep.
DEFAULT_MAX_OBJECTS = 4_000_000

#: Node attributes making up each per-node component.  Missing
#: attributes are skipped, so the same table works for Chord and
#: Pastry bindings (and stays tolerant of overlay refactors).
NODE_COMPONENTS: Dict[str, tuple] = {
    #: the user's own subscription table
    "subscriptions": ("own_subs",),
    #: rendezvous zone repositories + replicas + migration stores
    "zones": (
        "zone_repos",
        "rendezvous_index",
        "marker_origin",
        "migrated",
        "standby_repos",
        "standby_rendezvous",
        "standby_markers",
        "standby_migrated",
    ),
    #: overlay routing state (fingers/successors/snapshots/leaf sets)
    "overlay": (
        "fingers",
        "successors",
        "predecessor",
        "_snap_rot",
        "_snap_entries",
        "_neigh_cache",
        "leaf_set",
        "routing_table",
        "_pending_lookups",
    ),
    #: reliable transport + ordering buffers
    "transport": (
        "_rel_pending",
        "_rel_seen",
        "_delivered",
        "_pb_last_sent",
        "_dur_parks",
        "_dur_sub_parks",
        "_seq_blocked",
    ),
    #: epoch-keyed next-hop cache (perf extension)
    "route_cache": ("_rc",),
    #: custody-transfer write-ahead state (delivery guarantees)
    "durable_log": ("durable",),
}


def rss_bytes() -> Optional[int]:
    """Resident set size of this process in bytes (None if unknown).

    Reads ``/proc/self/status`` (Linux); falls back to the peak RSS
    from :func:`resource.getrusage` elsewhere.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


class _Walk:
    """One measurement's traversal state: shared seen-set + budget."""

    __slots__ = ("seen", "budget", "truncated")

    def __init__(self, max_objects: int) -> None:
        self.seen: Set[int] = set()
        self.budget = max_objects
        self.truncated = False

    def exclude(self, objs: Iterable[Any]) -> None:
        """Pre-seed the seen-set: these objects are never entered."""
        for obj in objs:
            self.seen.add(id(obj))


def deep_sizeof(obj: Any, walk: Optional[_Walk] = None) -> int:
    """Deep, shared-aware size of ``obj`` in bytes.

    Iterative (no recursion limit), cycle-safe, deterministic.  Numpy
    arrays are charged their buffer (views included); callables,
    modules and classes are charged their own size but never entered;
    objects already seen by ``walk`` cost nothing (pass one
    :class:`_Walk` across several calls to share double-count
    protection).
    """
    if walk is None:
        walk = _Walk(DEFAULT_MAX_OBJECTS)
    total = 0
    stack: List[Any] = [obj]
    seen = walk.seen
    while stack:
        o = stack.pop()
        oid = id(o)
        if oid in seen:
            continue
        seen.add(oid)
        if walk.budget <= 0:
            walk.truncated = True
            break
        walk.budget -= 1
        try:
            total += sys.getsizeof(o)
        except TypeError:  # pragma: no cover - exotic C objects
            continue
        if isinstance(o, _ATOMIC):
            continue
        if isinstance(o, np.ndarray):
            if o.base is not None:
                # A view: getsizeof misses the shared buffer; charge it
                # (the owning array, if also walked, is then a dup --
                # acceptable for views, which are rare in these tables).
                total += int(o.nbytes)
            continue
        if isinstance(o, _OPAQUE):
            continue
        if isinstance(o, dict):
            stack.extend(o.keys())
            stack.extend(o.values())
            continue
        if isinstance(o, (list, tuple, set, frozenset, deque)):
            stack.extend(o)
            continue
        d = getattr(o, "__dict__", None)
        if d is not None:
            stack.append(d)
        for cls in type(o).__mro__:
            for slot in cls.__dict__.get("__slots__", ()):
                if slot in ("__dict__", "__weakref__"):
                    continue
                try:
                    stack.append(getattr(o, slot))
                except AttributeError:
                    continue
    return total


@dataclass
class MemoryReport:
    """Per-subsystem heap footprint of one live system."""

    num_nodes: int
    alive_nodes: int
    #: nodes whose tables were actually walked (< alive_nodes means the
    #: per-node components were measured on a sample and scaled)
    sampled_nodes: int
    #: component name -> estimated bytes
    components: Dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0
    bytes_per_node: float = 0.0
    rss_bytes: Optional[int] = None
    #: the object budget ran out; totals are a lower bound
    truncated: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "num_nodes": self.num_nodes,
            "alive_nodes": self.alive_nodes,
            "sampled_nodes": self.sampled_nodes,
            "components": dict(sorted(self.components.items())),
            "total_bytes": self.total_bytes,
            "bytes_per_node": self.bytes_per_node,
            "rss_bytes": self.rss_bytes,
            "truncated": self.truncated,
        }


def _sample_indices(n: int, sample: int) -> List[int]:
    """``sample`` evenly spaced indices into ``range(n)`` (all if n<=sample)."""
    if n <= sample:
        return list(range(n))
    step = n / sample
    return sorted({int(i * step) for i in range(sample)})


def measure_system(
    system,
    node_sample: int = DEFAULT_NODE_SAMPLE,
    max_objects: int = DEFAULT_MAX_OBJECTS,
) -> MemoryReport:
    """Walk ``system`` and attribute its footprint per subsystem.

    Components (see :data:`NODE_COMPONENTS` for the per-node ones):
    ``subscriptions``, ``zones``, ``overlay``, ``transport``,
    ``route_cache``, ``durable_log`` (scaled from the node sample),
    plus ``sim_queue`` (the scheduler's live heap, messages included),
    ``ingress_queues`` (finite-service backlogs) and ``network_stats``
    (the fabric's per-node byte/message arrays), measured in full.
    """
    walk = _Walk(max_objects)
    # Never wander into the wiring: every node holds system/network/sim
    # back-references, and the telemetry session must not bill itself.
    walk.exclude([system, system.network, system.sim, system.topology])
    walk.exclude(system.nodes)
    walk.exclude(system.schemes.values())
    if getattr(system, "telemetry", None) is not None:
        walk.exclude([system.telemetry])

    alive = [n for n in system.nodes if n.alive()]
    picked = [alive[i] for i in _sample_indices(len(alive), node_sample)]
    scale = (len(alive) / len(picked)) if picked else 1.0

    components: Dict[str, int] = {}
    for name, attrs in NODE_COMPONENTS.items():
        measured = 0
        for node in picked:
            for attr in attrs:
                value = getattr(node, attr, None)
                if value is not None:
                    measured += deep_sizeof(value, walk)
        components[name] = int(measured * scale)

    # Global structures: measured in full, never scaled.
    components["sim_queue"] = deep_sizeof(system.sim._queue, walk)
    components["ingress_queues"] = sum(
        deep_sizeof(node._ingress_hi, walk) + deep_sizeof(node._ingress_lo, walk)
        for node in alive
        if hasattr(node, "_ingress_hi")
    )
    stats = system.network.stats
    components["network_stats"] = int(
        stats.in_bytes.nbytes
        + stats.out_bytes.nbytes
        + stats.in_msgs.nbytes
        + stats.out_msgs.nbytes
        + deep_sizeof(stats.bytes_by_kind, walk)
        + deep_sizeof(stats.msgs_by_kind, walk)
    )

    total = int(sum(components.values()))
    n_alive = len(alive)
    return MemoryReport(
        num_nodes=len(system.nodes),
        alive_nodes=n_alive,
        sampled_nodes=len(picked),
        components=components,
        total_bytes=total,
        bytes_per_node=total / n_alive if n_alive else 0.0,
        rss_bytes=rss_bytes(),
        truncated=walk.truncated,
    )


def publish_memory(
    system,
    registry=None,
    node_sample: int = DEFAULT_NODE_SAMPLE,
) -> MemoryReport:
    """Measure ``system`` and publish the report as registry gauges.

    Gauge names: ``mem.bytes_per_node`` (the headline floor tracked by
    the perf trajectory), ``mem.total_bytes``, ``mem.<component>`` for
    every component, and ``proc.rss_bytes``.  Gauges merge with *max*
    across parallel workers (see ``merge_manifests``), so a sweep's
    parent manifest reports the worst footprint any worker saw.
    """
    if registry is None:
        session = getattr(system, "telemetry", None)
        if session is None:
            raise ValueError(
                "publish_memory needs a registry or an attached session"
            )
        registry = session.registry
    report = measure_system(system, node_sample=node_sample)
    registry.gauge("mem.bytes_per_node").set(report.bytes_per_node)
    registry.gauge("mem.total_bytes").set(float(report.total_bytes))
    for name, value in report.components.items():
        registry.gauge(f"mem.{name}").set(float(value))
    if report.rss_bytes is not None:
        registry.gauge("proc.rss_bytes").set(float(report.rss_bytes))
    return report
