"""The telemetry session: one registry + tracer + profiler + manifest.

A session is *ambient*: ``python -m repro <exp> --telemetry-out DIR``
installs one with :func:`set_session`, and every
:class:`~repro.core.system.HyperSubSystem` built while it is active
attaches itself automatically -- experiments need no plumbing changes
to become observable.  ``finalize()`` writes the three artifacts::

    DIR/trace.jsonl     one span per line (causal event traces)
    DIR/metrics.json    full registry dump (values + sampled series)
    DIR/manifest.json   run provenance (see repro.telemetry.manifest)

Library code can also scope a session explicitly::

    with telemetry_session("out/run1") as sess:
        system = HyperSubSystem(...)   # attaches to sess
        ...
    # artifacts are on disk here
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.telemetry.manifest import git_revision, versions, write_manifest
from repro.telemetry.profiler import Profiler
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import Tracer


class TelemetrySession:
    """Collects everything one observable invocation produces."""

    def __init__(
        self,
        out_dir,
        label: str = "run",
        tracing: bool = True,
        profiling: bool = True,
        max_spans: int = 2_000_000,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.label = label
        #: span recording on/off (counters and profiling are independent)
        self.tracing = tracing
        #: wall-clock profiling of the matching/routing hot paths
        self.profiling = profiling
        self.registry = MetricsRegistry()
        self.tracer = Tracer(max_spans=max_spans)
        self.profiler = Profiler()
        #: one entry per system built under this session
        self.runs: List[Dict[str, Any]] = []
        #: per-experiment result summaries (record_result)
        self.results: Dict[str, Dict[str, Any]] = {}
        #: free-form provenance (workload spec, scale, ...)
        self.extra: Dict[str, Any] = {}
        #: streamed metric snapshots, in time order (repro.telemetry.export);
        #: worker sessions ship theirs back via the manifest and
        #: :meth:`merge_child_manifest` folds them in here
        self.snapshots: List[Dict[str, Any]] = []
        self._snap_seq = 0
        self._streamer = None
        #: invoking command line, stamped by the CLI before finalize
        self.command: Optional[str] = None
        self._t0 = time.time()
        self._finalized = False

    # -- paths ------------------------------------------------------------
    @property
    def trace_path(self) -> Path:
        return self.out_dir / "trace.jsonl"

    @property
    def metrics_path(self) -> Path:
        return self.out_dir / "metrics.json"

    @property
    def manifest_path(self) -> Path:
        return self.out_dir / "manifest.json"

    @property
    def stream_path(self) -> Path:
        from repro.telemetry.export import STREAM_FILENAME

        return self.out_dir / STREAM_FILENAME

    # -- population --------------------------------------------------------
    def attach_system(self, system) -> None:
        """Record one system's provenance (called by HyperSubSystem)."""
        self.runs.append(
            {
                "num_nodes": len(system.nodes),
                "overlay": system.config.overlay,
                "seed": system.config.seed,
                "config": asdict(system.config),
            }
        )

    def record_result(self, name: str, summary: Dict[str, Any]) -> None:
        """Attach one experiment's headline numbers to the manifest."""
        self.results[name] = dict(summary)

    def annotate(self, **info: Any) -> None:
        """Merge free-form provenance (workload spec, scale, ...)."""
        for key, value in info.items():
            if is_dataclass(value) and not isinstance(value, type):
                value = asdict(value)
            self.extra[key] = value

    def stream_snapshot(self, t_ms: Optional[float] = None, **extra: Any):
        """Emit one live metric snapshot (see ``repro.telemetry.export``).

        The snapshot is appended to :attr:`snapshots` (and therefore to
        the manifest), and written+flushed to ``metrics_stream.jsonl``
        so an external ``repro top`` sees it while the run is in
        flight.  Returns the snapshot dict.
        """
        from repro.telemetry.export import SnapshotStreamer, make_snapshot

        snap = make_snapshot(
            self.registry,
            label=self.label,
            seq=self._snap_seq,
            t_ms=t_ms,
            **extra,
        )
        self._snap_seq += 1
        self.snapshots.append(snap)
        if self._streamer is None:
            self._streamer = SnapshotStreamer(self.stream_path)
        self._streamer.emit(snap)
        return snap

    def merge_child_manifest(self, manifest: Dict[str, Any]) -> None:
        """Absorb one worker session's manifest (parallel sweeps).

        The child's systems join ``runs``, its result summaries join
        ``results`` (child keys win only where the parent has none),
        its counters are *summed* into this session's registry, its
        gauges folded in with max and its snapshot stream concatenated
        in time order -- so a sweep fanned out over a process pool
        still produces one parent manifest carrying the aggregate
        ``events.published``, drop counters, worst ``mem.*`` footprint
        and the full snapshot timeline.
        """
        self.runs.extend(manifest.get("runs", []))
        for name, summary in manifest.get("results", {}).items():
            self.results.setdefault(name, dict(summary))
        metrics = manifest.get("metrics", {})
        for name, value in metrics.get("counters", {}).items():
            if value:
                self.registry.counter(name).inc(float(value))
            else:
                self.registry.counter(name)  # presence matters too
        for name, value in metrics.get("gauges", {}).items():
            gauge = self.registry.gauge(name)
            gauge.set(max(gauge.value, float(value)))
        child_snaps = manifest.get("snapshots", [])
        if child_snaps:
            from repro.telemetry.export import (
                SnapshotStreamer,
                merge_snapshots,
            )

            if self._streamer is None:
                self._streamer = SnapshotStreamer(self.stream_path)
            for snap in child_snaps:
                self._streamer.emit(snap)
            self.snapshots = merge_snapshots(self.snapshots, child_snaps)

    # -- output ------------------------------------------------------------
    def build_manifest(self, command: Optional[str] = None) -> Dict[str, Any]:
        import os

        command = command if command is not None else self.command
        return {
            "created_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self._t0)
            ),
            "label": self.label,
            "command": command,
            "git_rev": git_revision(),
            "versions": versions(),
            "pid": os.getpid(),
            "snapshots": list(self.snapshots),
            "wall_seconds": time.time() - self._t0,
            "runs": self.runs,
            "results": self.results,
            "extra": self.extra,
            "metrics": self.registry.summary(),
            "profile": self.profiler.summary(),
            "trace_file": self.trace_path.name,
            "trace_spans": len(self.tracer),
            "trace_spans_dropped": self.tracer.dropped,
            "trace_events": len(self.tracer.event_ids()),
        }

    def finalize(self, command: Optional[str] = None) -> Dict[str, Any]:
        """Write trace.jsonl, metrics.json and manifest.json (idempotent)."""
        self._finalized = True
        if self._streamer is not None:
            self._streamer.close()
            self._streamer = None
        self.tracer.write_jsonl(self.trace_path)
        import json

        self.metrics_path.write_text(
            json.dumps(self.registry.as_dict(), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        manifest = self.build_manifest(command=command)
        write_manifest(self.manifest_path, manifest)
        return manifest


# ----------------------------------------------------------------------
# Ambient session
# ----------------------------------------------------------------------
_current: Optional[TelemetrySession] = None


def current_session() -> Optional[TelemetrySession]:
    """The active session, or None when telemetry is disabled."""
    return _current


def set_session(session: Optional[TelemetrySession]) -> None:
    global _current
    _current = session


@contextmanager
def telemetry_session(out_dir, **kwargs) -> Iterator[TelemetrySession]:
    """Scope an ambient session; finalizes (writes artifacts) on exit."""
    session = TelemetrySession(out_dir, **kwargs)
    previous = current_session()
    set_session(session)
    try:
        yield session
    finally:
        set_session(previous)
        session.finalize()
