"""Streaming metric export: live JSONL snapshots + the ``top`` view.

The PR 5 runner made long sweeps parallel and crash-tolerant -- and
completely opaque until they finish.  This module is the live window:

* :func:`make_snapshot` / :class:`SnapshotStreamer` -- one JSON object
  per line (sim time + wall time + every counter/gauge + RSS) appended
  to ``metrics_stream.jsonl`` in the telemetry output directory,
  flushed per line so an external reader sees it *while the run is in
  flight*;
* :func:`read_snapshots` -- tolerant reader (a truncated final line,
  the normal state of a live file, is skipped, not an error);
* :func:`merge_snapshots` -- time-ordered concatenation; worker
  sessions ship their snapshots back over the existing manifest-merge
  channel and the parent folds them into one stream;
* ``sweep_status.json`` -- the runner's atomically rewritten progress
  document (points done/failed/retried, store hits, events/s, RSS,
  per-worker lag);
* :func:`run_top` -- ``python -m repro top DIR [--live]``, the CLI
  view that tails a running sweep.

Nothing here touches simulation state: a crashed viewer, a missing
stream or a half-written line never affects results.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry.memory import rss_bytes

#: File names inside a telemetry output directory.
STREAM_FILENAME = "metrics_stream.jsonl"
STATUS_FILENAME = "sweep_status.json"

#: Schema tag carried by every snapshot line.
SNAPSHOT_SCHEMA = "repro-snapshot/1"


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def make_snapshot(
    registry,
    label: str = "run",
    seq: int = 0,
    t_ms: Optional[float] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """One self-contained metric snapshot (JSON-safe).

    ``wall`` is absolute epoch time -- the merge key across processes;
    ``t_ms`` is simulated time when the caller has one.  ``extra``
    fields (e.g. ``kind="sweep"``, the sweep progress block) ride
    along untouched.
    """
    snap: Dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "wall": time.time(),
        "t_ms": t_ms,
        "seq": seq,
        "label": label,
        "pid": os.getpid(),
        "rss_bytes": rss_bytes(),
    }
    if registry is not None:
        summary = registry.summary()
        snap["counters"] = summary["counters"]
        snap["gauges"] = summary["gauges"]
    snap.update(extra)
    return snap


def snapshot_sort_key(snap: Dict[str, Any]):
    """Stable time ordering across processes: wall, then pid, then seq."""
    return (
        float(snap.get("wall", 0.0)),
        int(snap.get("pid", 0)),
        int(snap.get("seq", 0)),
    )


def merge_snapshots(*streams: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Concatenate snapshot streams in time order (see sort key)."""
    merged: List[Dict[str, Any]] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=snapshot_sort_key)
    return merged


class SnapshotStreamer:
    """Append-only JSONL writer, flushed per line.

    The file is opened lazily (a session that never streams creates no
    file) and every ``emit`` ends with ``flush`` so a concurrent
    ``repro top`` reader sees each snapshot as soon as it exists.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None
        self.emitted = 0

    def emit(self, snap: Dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(snap, sort_keys=True) + "\n")
        self._fh.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_snapshots(path) -> List[Dict[str, Any]]:
    """Parse a snapshot stream; malformed/partial lines are skipped.

    A live stream's last line is routinely half-written -- that is the
    reader's problem, and this reader treats it as 'not there yet'.
    """
    path = Path(path)
    if not path.exists():
        return []
    out: List[Dict[str, Any]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(doc, dict):
            out.append(doc)
    return out


# ----------------------------------------------------------------------
# Sweep status (atomically rewritten progress document)
# ----------------------------------------------------------------------
def write_status(path, status: Dict[str, Any]) -> None:
    """Atomic rewrite (tmp + replace): a reader never sees a torn file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = dict(status)
    doc.setdefault("wall", time.time())
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)


def read_status(path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


# ----------------------------------------------------------------------
# The ``top`` view
# ----------------------------------------------------------------------
def _fmt_bytes(n: Optional[float]) -> str:
    if n is None:
        return "?"
    n = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024.0 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1024.0
    return f"{n:.1f} GB"  # pragma: no cover - unreachable


#: Metric names the panel surfaces from the latest snapshot (anything
#: else is still in the stream; this is a dashboard, not a dump).
PANEL_METRICS = (
    ("counters", "events.published"),
    ("counters", "events.delivered"),
    ("counters", "net.dropped"),
    ("counters", "transport.retransmissions"),
    ("counters", "store.hits"),
    ("gauges", "queue.depth"),
    ("gauges", "queue.depth.peak"),
    ("gauges", "sim.live_events"),
    ("gauges", "mem.bytes_per_node"),
)


def render_top(directory, now: Optional[float] = None) -> str:
    """One render of the observatory panel for a telemetry directory."""
    directory = Path(directory)
    now = time.time() if now is None else now
    status = read_status(directory / STATUS_FILENAME)
    snaps = read_snapshots(directory / STREAM_FILENAME)
    lines: List[str] = [f"repro top -- {directory}"]
    if status is None and not snaps:
        lines.append(
            "  no live artifacts here yet (run a sweep with "
            "--telemetry-out DIR; see docs/OBSERVABILITY.md)"
        )
        return "\n".join(lines)

    if status is not None:
        age = now - float(status.get("wall", now))
        total = int(status.get("points_total", 0))
        done = int(status.get("done", 0))
        state = "finished" if status.get("finished") else "running"
        lines.append(
            f"sweep {status.get('label', '?')} [{state}, updated "
            f"{age:.1f}s ago]  pid {status.get('pid', '?')}  "
            f"jobs {status.get('jobs', '?')}"
        )
        width = 30
        frac = done / total if total else 0.0
        bar = "#" * int(round(frac * width))
        lines.append(
            f"  [{bar:<{width}}] {done}/{total} points  "
            f"(run {status.get('executed', 0)}, store {status.get('store_hits', 0)}, "
            f"memo {status.get('memo_hits', 0)}, failed {status.get('failed', 0)}, "
            f"retried {status.get('retried', 0)})"
        )
        lines.append(
            f"  events/s {status.get('events_per_sec', 0.0):,.1f}  "
            f"elapsed {status.get('elapsed_seconds', 0.0):.1f}s  "
            f"rss {_fmt_bytes(status.get('rss_bytes'))}"
        )
        workers = status.get("workers", {})
        for wname in sorted(workers):
            w = workers[wname]
            last = w.get("last_done_wall")
            lag = f"{now - float(last):.1f}s" if last else "?"
            lines.append(
                f"  {wname}: {w.get('points', 0)} points, "
                f"{w.get('wall_seconds', 0.0):.1f}s compute, lag {lag}"
            )

    if snaps:
        snaps = merge_snapshots(snaps)
        latest = snaps[-1]
        t_ms = latest.get("t_ms")
        sim = f"sim {t_ms:,.0f} ms, " if isinstance(t_ms, (int, float)) else ""
        lines.append(
            f"stream: {len(snaps)} snapshots, latest from "
            f"{latest.get('label', '?')} ({sim}pid {latest.get('pid', '?')}, "
            f"rss {_fmt_bytes(latest.get('rss_bytes'))})"
        )
        shown: List[str] = []
        for group, name in PANEL_METRICS:
            value = latest.get(group, {}).get(name)
            if value is None:
                continue
            if name == "mem.bytes_per_node":
                shown.append(f"{name}={_fmt_bytes(value)}")
            else:
                shown.append(f"{name}={value:,.0f}")
        if shown:
            lines.append("  " + "  ".join(shown))
    return "\n".join(lines)


def run_top(
    directory,
    live: bool = False,
    interval: float = 2.0,
    max_refreshes: Optional[int] = None,
    stream=None,
) -> int:
    """``python -m repro top DIR`` entry point.

    One render by default; ``live`` re-renders every ``interval``
    seconds until the status file reports ``finished`` (or forever for
    a directory with no status -- interrupt with Ctrl-C).  Returns 2
    when the directory has no live artifacts at all and ``live`` is
    off, so scripts can distinguish 'nothing to watch' from 'watched'.
    """
    directory = Path(directory)
    stream = stream if stream is not None else sys.stdout
    refreshes = 0
    while True:
        text = render_top(directory)
        print(text, file=stream, flush=True)
        refreshes += 1
        if not live:
            return 2 if "no live artifacts" in text else 0
        status = read_status(directory / STATUS_FILENAME)
        if status is not None and status.get("finished"):
            return 0
        if max_refreshes is not None and refreshes >= max_refreshes:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
        print("", file=stream)
