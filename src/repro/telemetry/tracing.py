"""Causal span tracing on the simulator clock.

Aggregate metrics (Figures 2-5) say *what* a run cost; spans say *why*.
Every publish opens a root span; every forwarded packet, matching
step, delivery, retransmission, failover reroute and anti-entropy
exchange records a child span with parent linkage, all timestamped on
the simulated clock.  The result is a causal tree per event that can
be exported as JSONL (one span per line), reloaded, and rendered --
``python -m repro trace --event N`` does exactly that.

Span kinds emitted by the stack:

==============  ======================================================
``publish``     root of one event's tree (node = publisher)
``forward``     one aggregated event packet on one overlay link
                (attrs: ``src``, ``dst``, ``entries``, ``bytes``)
``match``       a surrogate matched a repository against the event
                (attrs: ``entries`` = SubIDs produced)
``deliver``     a subscriber received the event (attrs: ``subid``,
                ``hops``, ``latency_ms``)
``retransmit``  the reliable transport resent an unacked packet
``failover``    retry exhaustion: SubIDs rerouted around a dead hop
                (attrs: ``dead``, ``budget``)
``give_up``     the transport abandoned a packet (attrs: ``entries``,
                ``cause`` in ``retries|failover|ttl|shed``)
``durable_redeliver``  a custody log re-sent an unacked obligation
                (attrs: ``entry_kind``, ``attempt``; delivery
                guarantees extension, docs/GUARANTEES.md)
``durable_truncate``   the custody-log budget evicted an entry -- a
                counted, permanent loss (attrs: ``entry_kind``)
``ae_digest``   anti-entropy digest offered to a standby peer
``ae_fill``     anti-entropy diff shipped back to the primary
``fault``       a :class:`~repro.faults.FaultSchedule` action fired
``shed``        admission control shed a packet from a full ingress
                queue (attrs: ``msg_kind``, ``src``)
``busy``        a sender honoured a ``ps_busy`` NACK (attrs: ``dst``,
                ``backoff_ms``)
``breaker_open``  a per-destination circuit breaker opened
                (attrs: ``dst``); policy in docs/FAULTS.md
==============  ======================================================

``forward`` spans double as the dissemination-tree edge store:
:meth:`Tracer.edges_for_event` reconstructs exactly the edge set that
:class:`~repro.core.system.EventRecord` collects, because both are
written by the same call site in ``repro.core.node``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def _json_default(obj: Any) -> Any:
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


@dataclass
class Span:
    """One traced operation, pinned to the simulated clock."""

    sid: int
    kind: str
    t: float
    #: network address of the node that performed the operation
    node: Optional[int] = None
    #: event id this span belongs to (None for AE / fault spans)
    event: Optional[int] = None
    parent: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"sid": self.sid, "kind": self.kind, "t": self.t}
        if self.node is not None:
            out["node"] = self.node
        if self.event is not None:
            out["event"] = self.event
        if self.parent is not None:
            out["parent"] = self.parent
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Append-only span store for one telemetry session.

    ``max_spans`` bounds memory on huge runs: past the cap new spans
    are counted in :attr:`dropped` instead of stored (a child of a
    dropped span records ``parent=None``, which renderers treat as an
    orphan root).
    """

    def __init__(self, max_spans: int = 2_000_000) -> None:
        self.spans: List[Span] = []
        self.max_spans = max_spans
        self.dropped = 0
        self._next_sid = 0

    def span(
        self,
        kind: str,
        t: float,
        node: Optional[int] = None,
        event: Optional[int] = None,
        parent: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[int]:
        """Record one span; returns its id (None once the cap is hit)."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        self._next_sid += 1
        sid = self._next_sid
        self.spans.append(
            Span(sid=sid, kind=kind, t=float(t), node=node, event=event,
                 parent=parent, attrs=attrs)
        )
        return sid

    def __len__(self) -> int:
        return len(self.spans)

    # -- queries ----------------------------------------------------------
    def spans_for_event(self, event_id: int) -> List[Span]:
        return [s for s in self.spans if s.event == event_id]

    def event_ids(self) -> List[int]:
        return sorted({s.event for s in self.spans if s.event is not None})

    def edges_for_event(self, event_id: int) -> List[Tuple[int, int, int]]:
        """Dissemination edges ``(src, dst, n_entries)`` from the trace --
        the same edge set :class:`EventRecord.edges` accumulates."""
        return [
            (s.attrs["src"], s.attrs["dst"], s.attrs["entries"])
            for s in self.spans
            if s.event == event_id and s.kind == "forward"
        ]

    # -- persistence -------------------------------------------------------
    def write_jsonl(self, path) -> int:
        """One span per line; returns the number of lines written."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict(), default=_json_default))
                fh.write("\n")
        return len(self.spans)


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Load a trace written by :meth:`Tracer.write_jsonl` (plain dicts)."""
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# ----------------------------------------------------------------------
# Operations over exported spans (plain dicts, as read_jsonl returns)
# ----------------------------------------------------------------------
def spans_for_event(spans: Iterable[Dict], event_id: int) -> List[Dict]:
    return [s for s in spans if s.get("event") == event_id]


def edges_from_spans(
    spans: Iterable[Dict], event_id: int
) -> List[Tuple[int, int, int]]:
    return [
        (s["attrs"]["src"], s["attrs"]["dst"], s["attrs"]["entries"])
        for s in spans
        if s.get("event") == event_id and s.get("kind") == "forward"
    ]


def _span_label(s: Dict) -> str:
    kind = s.get("kind", "?")
    attrs = s.get("attrs", {})
    node = s.get("node")
    t = s.get("t", 0.0)
    if kind == "publish":
        core = f"publish @ node {node}"
    elif kind == "forward":
        core = (
            f"forward {attrs.get('src')} -> {attrs.get('dst')} "
            f"[{attrs.get('entries')} subids, {attrs.get('bytes', 0)}B]"
        )
    elif kind == "match":
        core = f"match @ node {node} -> {attrs.get('entries')} subids"
    elif kind == "deliver":
        core = (
            f"deliver @ node {node} subid={tuple(attrs.get('subid', ()))} "
            f"hops={attrs.get('hops')} latency={attrs.get('latency_ms', 0):.1f}ms"
        )
    elif kind == "failover":
        core = f"failover @ node {node} around dead {attrs.get('dead')}"
    elif kind == "retransmit":
        core = f"retransmit @ node {node} -> {attrs.get('dst')}"
    elif kind == "give_up":
        core = f"give_up @ node {node} [{attrs.get('entries')} subids]"
    else:
        extra = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        core = f"{kind} @ node {node}" + (f" [{extra}]" if extra else "")
    return f"{core}  t={t:.1f}ms"


def render_span_tree(
    spans: Sequence[Dict], event_id: int, max_spans: int = 4000
) -> str:
    """ASCII rendering of one event's causal span tree.

    Children are ordered by span id (creation order, deterministic for
    a fixed seed); spans whose parent was not recorded (trace cap, or
    parent filtered out) are promoted to roots.
    """
    ev_spans = spans_for_event(spans, event_id)
    if not ev_spans:
        return f"event {event_id}: no spans in trace"
    by_sid = {s["sid"]: s for s in ev_spans}
    children: Dict[Optional[int], List[Dict]] = {}
    for s in sorted(ev_spans, key=lambda s: s["sid"]):
        parent = s.get("parent")
        if parent is not None and parent not in by_sid:
            parent = None
        children.setdefault(parent, []).append(s)

    lines = [f"event {event_id}: {len(ev_spans)} spans"]
    budget = [max_spans]

    def visit(span: Dict, prefix: str, last: bool) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        connector = "`-" if last else "|-"
        lines.append(f"{prefix}{connector} {_span_label(span)}")
        kids = children.get(span["sid"], [])
        ext = "   " if last else "|  "
        for i, kid in enumerate(kids):
            visit(kid, prefix + ext, i == len(kids) - 1)

    roots = children.get(None, [])
    for i, root in enumerate(roots):
        if i == 0 and root.get("kind") == "publish":
            lines.append(_span_label(root))
            kids = children.get(root["sid"], [])
            for j, kid in enumerate(kids):
                visit(kid, "", j == len(kids) - 1)
        else:
            visit(root, "", i == len(roots) - 1)
    if budget[0] <= 0:
        lines.append(f"... truncated at {max_spans} spans")
    return "\n".join(lines)
