"""Metrics registry: named counters, gauges and histograms.

The seed repository grew measurement state ad hoc -- an attribute here
(``NetworkStats.retransmissions``), a dict there (``bytes_by_kind``),
a recomputed aggregate in every experiment.  The registry gives every
quantity a *name* (dotted, e.g. ``transport.retransmissions``,
``zone.occupancy``, ``node.load_imbalance``, ``repair.bytes``), one
owner, and a uniform export path into the run manifest.

Three instrument kinds:

* :class:`Counter` -- monotonically increasing tally (``inc``);
* :class:`Gauge` -- last-written value (``set`` / ``add``);
* :class:`Histogram` -- sample accumulator with percentile summaries
  (``observe``).

Counters and gauges additionally support **sim-time series sampling**:
:meth:`MetricsRegistry.sample_all` snapshots every instrument at a
simulated timestamp, so a run's manifest can show e.g. the load
imbalance *over time* rather than only its final value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class Counter:
    """A named monotonically-increasing tally."""

    __slots__ = ("name", "value", "events")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.events = 0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot decrease")
        self.value += amount
        self.events += 1

    def reset(self) -> None:
        self.value = 0.0
        self.events = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A named sample accumulator with distribution summaries."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def reset(self) -> None:
        self.values.clear()

    @property
    def n(self) -> int:
        return len(self.values)

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"n": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                    "p99": 0.0, "max": 0.0}
        arr = np.asarray(self.values, dtype=np.float64)
        return {
            "n": int(arr.size),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p90": float(np.percentile(arr, 90)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.n})"


class MetricsRegistry:
    """Name-indexed home for every instrument of one telemetry scope.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create, so any
    layer can publish into a shared registry without coordination::

        reg.counter("transport.retransmissions").inc()
        reg.gauge("node.load_imbalance").set(imb)
        reg.histogram("delivery.hops").observe(h)
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: metric name -> [(sim time ms, value)] sampled series
        self.series: Dict[str, List[Tuple[float, float]]] = {}

    # -- instruments ----------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_fresh(name)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_fresh(name)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_fresh(name)
            h = self._histograms[name] = Histogram(name)
        return h

    def _check_fresh(self, name: str) -> None:
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(f"metric {name!r} already registered with another kind")

    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def value(self, name: str) -> Optional[float]:
        """Current scalar value of a counter or gauge (None if unknown)."""
        inst = self._counters.get(name) or self._gauges.get(name)
        return None if inst is None else inst.value

    # -- sim-time series sampling ----------------------------------------
    def sample(self, name: str, t_ms: float) -> None:
        """Append one ``(t, value)`` point for a counter or gauge."""
        v = self.value(name)
        if v is None:
            raise KeyError(f"no counter or gauge named {name!r}")
        self.series.setdefault(name, []).append((float(t_ms), v))

    def sample_all(self, t_ms: float) -> None:
        """Snapshot every counter and gauge at simulated time ``t_ms``."""
        for name in list(self._counters) + list(self._gauges):
            self.sample(name, t_ms)

    # -- export -----------------------------------------------------------
    def summary(self) -> Dict[str, Dict]:
        """The manifest's ``metrics`` block: final values + histogram stats."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def as_dict(self) -> Dict[str, Dict]:
        """Full dump (summary + sampled series), for ``metrics.json``."""
        out = self.summary()
        out["series"] = {
            n: [[t, v] for t, v in pts] for n, pts in sorted(self.series.items())
        }
        return out

    def reset(self, prefix: str = "") -> None:
        """Zero every instrument whose name starts with ``prefix``
        (series are kept -- they are history, not state)."""
        for group in (self._counters, self._gauges, self._histograms):
            for name, inst in group.items():
                if name.startswith(prefix):
                    inst.reset()
