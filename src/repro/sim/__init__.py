"""Discrete event-driven, packet-level network simulator.

This package is the reproduction's substitute for p2psim (the C++
simulator the paper runs on).  It provides:

* :class:`~repro.sim.engine.Simulator` -- a deterministic discrete-event
  scheduler (time unit: milliseconds).
* :class:`~repro.sim.network.Network` -- a packet-level message fabric
  with per-node byte accounting.
* :mod:`~repro.sim.topology` -- latency models, including the synthetic
  King-style topology used throughout the evaluation.
* :mod:`~repro.sim.stats` -- counters and distribution helpers.
"""

from repro.sim.engine import Simulator, EventHandle
from repro.sim.messages import Message
from repro.sim.network import Network, SimNode
from repro.sim.stats import NetworkStats, Counter
from repro.sim.topology import (
    Topology,
    ConstantTopology,
    ExplicitTopology,
    KingLikeTopology,
)

__all__ = [
    "Simulator",
    "EventHandle",
    "Message",
    "Network",
    "SimNode",
    "NetworkStats",
    "Counter",
    "Topology",
    "ConstantTopology",
    "ExplicitTopology",
    "KingLikeTopology",
]
