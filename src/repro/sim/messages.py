"""Network message representation and size model.

The paper models event-message sizes explicitly (Section 5.1):

    "The size of each event message is modeled in bytes as: 20 bytes for
    packet header, 100 bytes for event, and 9 bytes for each SubID
    (8 bytes for subscriber's nodeID, and 1 byte for internalID)."

Those constants live here so the core library, the baselines and the
benchmarks all charge bandwidth identically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Bytes charged for a packet header on every message.
HEADER_BYTES = 20
#: Bytes charged for the event body carried in a delivery message.
EVENT_BYTES = 100
#: Bytes charged per SubID carried in a delivery message (8B nodeID + 1B iid).
SUBID_BYTES = 9
#: Bytes charged for a bare control/RPC message payload (lookup step etc.).
CONTROL_BYTES = 20
#: Bytes added to an event packet when ring state rides along
#: (sender id + predecessor + successor entries; piggyback extension).
PIGGYBACK_BYTES = 24
#: Bytes charged per zone-repository summary in an anti-entropy digest
#: (repo key ~12B + entry count 4B + 8B checksum; self-healing extension).
AE_DIGEST_ENTRY_BYTES = 24
#: Bytes charged per custody-tagged entry on a durable event packet
#: (custodian addr 4B + token 8B + stream/sequence 4B; delivery-
#: guarantees extension).
DURABLE_META_BYTES = 16
#: Bytes charged per causal-dependency pair on a sequencer-bound packet
#: (publisher addr 4B + pseq 8B).
DEP_ENTRY_BYTES = 12

_msg_counter = itertools.count()


def event_message_bytes(num_subids: int) -> int:
    """Size of an event-delivery packet carrying ``num_subids`` SubIDs."""
    if num_subids < 0:
        raise ValueError("num_subids must be non-negative")
    return HEADER_BYTES + EVENT_BYTES + SUBID_BYTES * num_subids


@dataclass
class Message:
    """A packet in flight between two simulated nodes.

    ``src`` / ``dst`` are *network addresses* (dense indices into the
    topology), not DHT identifiers.  ``payload`` is opaque to the network
    layer; protocols dispatch on ``kind``.
    """

    src: int
    dst: int
    kind: str
    payload: Any
    size_bytes: int
    #: hop count accumulated along an application-level dissemination path
    hops: int = 0
    #: application-level path latency accumulated so far (ms)
    path_latency: float = 0.0
    #: simulation time at which the *root* request was issued
    root_time: float = 0.0
    #: telemetry span under which this packet's processing nests (set by
    #: the sender when causal tracing is active; NOT inherited by
    #: ``child`` -- each forwarded packet gets its own ``forward`` span)
    span_id: Optional[int] = None
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    def child(self, src: int, dst: int, kind: str, payload: Any, size_bytes: int) -> "Message":
        """Derive a follow-on message that inherits path metadata.

        Used by recursive protocols (event delivery) where each hop
        constructs new packets but per-path hop/latency counters must
        keep accumulating.
        """
        return Message(
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            hops=self.hops,
            path_latency=self.path_latency,
            root_time=self.root_time,
        )
