"""Measurement plumbing: byte counters and distribution summaries.

The paper's cost metrics (Section 5.1):

* per-event **hops** -- maximum path length to reach all subscribers;
* per-event **latency** -- maximum delivery time;
* per-event **bandwidth cost** -- total bytes moved for one event;
* per-node **in/out bandwidth** -- bytes received/sent over a whole run.

:class:`NetworkStats` owns the per-node counters; per-event metrics are
accumulated by the pub/sub layer in :class:`repro.core.system.EventRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.telemetry.registry import MetricsRegistry

#: Why a packet never reached a live handler.  ``dead_dst`` -- the
#: destination is unregistered or crashed; ``loss`` -- i.i.d. injected
#: message loss; ``partition`` -- src and dst are in different partition
#: groups; ``overflow`` -- the destination's bounded ingress queue was
#: full (finite-service model).  One aggregate ``net.dropped`` hid which
#: fault dropped a packet; the per-cause split keeps each mechanism's
#: contribution visible in ``transport_summary`` and the run manifest.
DROP_CAUSES = ("dead_dst", "loss", "partition", "overflow")

#: Why the reliable transport permanently abandoned an event packet.
#: ``retries`` -- ack timeouts exhausted the retry budget with no
#: failover route; ``failover`` -- the reroute budget ran out (or the
#: sender died mid-failover); ``ttl`` -- the hop limit caught a routing
#: loop; ``shed`` -- admission control dropped a fire-and-forget packet
#: nobody would retransmit.  The aggregate ``transport.gave_up`` hid
#: which mechanism lost a delivery; the per-cause split lets the
#: guarantees experiment attribute exactly what durable mode recovers.
GIVE_UP_CAUSES = ("retries", "failover", "ttl", "shed")

#: Durable-delivery health counters (delivery-guarantees extension):
#: custody entries appended / retired by subscriber-level acks /
#: re-sent by the redelivery scan / evicted by the log budget, plus
#: out-of-order arrivals dropped by a full reorder buffer.  Created
#: eagerly so every manifest carries them (zero on best-effort runs).
DURABLE_COUNTERS = (
    "durable.appends",
    "durable.acked",
    "durable.redelivered",
    "durable.truncated",
    "durable.reorder_overflow",
)


class Counter:
    """A named monotonically-increasing tally."""

    __slots__ = ("name", "count", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0

    def add(self, value: float = 1.0) -> None:
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}: n={self.count}, total={self.total})"


class NetworkStats:
    """Per-node byte/message accounting for one simulation run.

    The reliable-transport health counters (``retransmissions``,
    ``gave_up``, ``gave_up_subids``) live in a
    :class:`~repro.telemetry.registry.MetricsRegistry` under the
    ``transport.*`` names rather than as ad-hoc attributes; the
    attribute API is preserved via properties.  Passing the telemetry
    session's registry makes them land in the run manifest for free.
    """

    def __init__(
        self, num_nodes: int, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.num_nodes = num_nodes
        self.in_bytes = np.zeros(num_nodes, dtype=np.float64)
        self.out_bytes = np.zeros(num_nodes, dtype=np.float64)
        self.in_msgs = np.zeros(num_nodes, dtype=np.int64)
        self.out_msgs = np.zeros(num_nodes, dtype=np.int64)
        self.bytes_by_kind: Dict[str, float] = {}
        self.msgs_by_kind: Dict[str, int] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        #: reliable-transport health: packets resent after an ack timeout,
        #: and packets abandoned after exhausting retries *and* (when
        #: hop-failover is on) rerouting attempts.  Before these existed,
        #: exhausted hops vanished silently (src/repro/core/node.py's
        #: _rel_retry simply dropped the pending state).
        self._c_retrans = self.registry.counter("transport.retransmissions")
        self._c_gave_up = self.registry.counter("transport.gave_up")
        #: SubIDs riding on abandoned packets (deliveries at risk).
        self._c_gave_up_subids = self.registry.counter("transport.gave_up_subids")
        #: per-cause breakdown of the give-ups (see GIVE_UP_CAUSES).
        self._c_gave_up_cause = {
            cause: self.registry.counter(f"transport.gave_up.{cause}")
            for cause in GIVE_UP_CAUSES
        }
        #: durable-delivery custody-log health (zero when the mode is off).
        self._c_durable = {
            name: self.registry.counter(name) for name in DURABLE_COUNTERS
        }
        #: ``ps_busy`` NACKs honoured by senders (overload backpressure:
        #: each one rescheduled a retransmission with exponential backoff
        #: instead of consuming the retry budget).
        self._c_busy = self.registry.counter("transport.busy_backoffs")
        #: packets that never reached a live handler, total and by cause.
        self._c_dropped = self.registry.counter("net.dropped")
        self._c_drop_cause = {
            cause: self.registry.counter(f"net.dropped.{cause}")
            for cause in DROP_CAUSES
        }
        #: gray-failure injection accounting (chaos extension): packets
        #: the network delivered a second time, and packets that picked
        #: up adversarial reorder jitter.  Zero on healthy runs.
        self._c_duplicated = self.registry.counter("net.duplicated")
        self._c_reordered = self.registry.counter("net.reordered")
        #: event packets deliberately shed by admission control (each one
        #: was NACKed with ``ps_busy`` or accounted as a give-up -- never
        #: silently lost, mirroring the ``gave_up`` discipline).
        self._c_shed = self.registry.counter("faults.shed")
        #: circuit-breaker transitions to the open state (per node+dst).
        self._c_breaker_open = self.registry.counter("breaker.open")
        #: iterative DHT lookups restarted from the origin after the
        #: routing-loop guard tripped -- an expected transient while the
        #: ring heals around failures, fatal only if it never converges.
        self._c_lookup_restarts = self.registry.counter("dht.lookup_restarts")
        # Eagerly create the queue-depth gauges so every pub/sub run's
        # manifest carries them (REQUIRED_METRICS), even before the first
        # sample_telemetry() call.  ``queue.depth`` is the instantaneous
        # total; ``queue.depth.peak`` is the deepest single-node ingress
        # backlog seen anywhere over the whole run (finite-service model).
        self.registry.gauge("queue.depth")
        self._g_queue_peak = self.registry.gauge("queue.depth.peak")

    # -- registry-backed counter attributes -----------------------------
    @property
    def retransmissions(self) -> int:
        return int(self._c_retrans.value)

    @retransmissions.setter
    def retransmissions(self, value: int) -> None:
        self._c_retrans.value = float(value)

    @property
    def gave_up(self) -> int:
        return int(self._c_gave_up.value)

    @gave_up.setter
    def gave_up(self, value: int) -> None:
        self._c_gave_up.value = float(value)

    @property
    def gave_up_subids(self) -> int:
        return int(self._c_gave_up_subids.value)

    @gave_up_subids.setter
    def gave_up_subids(self, value: int) -> None:
        self._c_gave_up_subids.value = float(value)

    @property
    def busy_backoffs(self) -> int:
        return int(self._c_busy.value)

    @busy_backoffs.setter
    def busy_backoffs(self, value: int) -> None:
        self._c_busy.value = float(value)

    @property
    def shed(self) -> int:
        return int(self._c_shed.value)

    @shed.setter
    def shed(self, value: int) -> None:
        self._c_shed.value = float(value)

    @property
    def breaker_opens(self) -> int:
        return int(self._c_breaker_open.value)

    @breaker_opens.setter
    def breaker_opens(self, value: int) -> None:
        self._c_breaker_open.value = float(value)

    @property
    def lookup_restarts(self) -> int:
        return int(self._c_lookup_restarts.value)

    @lookup_restarts.setter
    def lookup_restarts(self, value: int) -> None:
        self._c_lookup_restarts.value = float(value)

    @property
    def dropped(self) -> int:
        return int(self._c_dropped.value)

    @dropped.setter
    def dropped(self, value: int) -> None:
        self._c_dropped.value = float(value)

    @property
    def dropped_by_cause(self) -> Dict[str, int]:
        """``{cause: count}`` over :data:`DROP_CAUSES` (all keys present)."""
        return {
            cause: int(ctr.value) for cause, ctr in self._c_drop_cause.items()
        }

    def record_drop(self, cause: str) -> None:
        """Account one dropped packet under ``cause`` (see DROP_CAUSES)."""
        self._c_dropped.inc()
        self._c_drop_cause[cause].inc()

    @property
    def duplicated(self) -> int:
        """Packets the network ghost-delivered twice (duplicate fault)."""
        return int(self._c_duplicated.value)

    def record_duplicate(self) -> None:
        self._c_duplicated.inc()

    @property
    def reordered(self) -> int:
        """Packets that picked up adversarial reorder jitter."""
        return int(self._c_reordered.value)

    def record_reorder(self) -> None:
        self._c_reordered.inc()

    @property
    def gave_up_by_cause(self) -> Dict[str, int]:
        """``{cause: count}`` over :data:`GIVE_UP_CAUSES` (all keys present)."""
        return {
            cause: int(ctr.value)
            for cause, ctr in self._c_gave_up_cause.items()
        }

    def record_give_up(self, cause: str, n_subids: int) -> None:
        """Account one abandoned packet under ``cause`` (GIVE_UP_CAUSES)."""
        self._c_gave_up.inc()
        self._c_gave_up_cause[cause].inc()
        self._c_gave_up_subids.inc(n_subids)

    def record_durable(self, name: str, n: int = 1) -> None:
        """Bump one ``durable.*`` counter (see DURABLE_COUNTERS)."""
        self._c_durable[f"durable.{name}"].inc(n)

    @property
    def durable_counts(self) -> Dict[str, int]:
        """``{short name: count}`` for the ``durable.*`` counters."""
        return {
            name.split(".", 1)[1]: int(ctr.value)
            for name, ctr in self._c_durable.items()
        }

    def note_queue_depth(self, depth: int) -> None:
        """Raise the run-wide ingress high-water mark (cheap: only a new
        per-node peak reaches here, so this is rare by construction)."""
        if depth > self._g_queue_peak.value:
            self._g_queue_peak.set(float(depth))

    @property
    def queue_peak(self) -> int:
        """Deepest single-node ingress backlog observed this run."""
        return int(self._g_queue_peak.value)

    def record_send(self, src: int, dst: int, kind: str, size_bytes: int) -> None:
        self.out_bytes[src] += size_bytes
        self.out_msgs[src] += 1
        self.in_bytes[dst] += size_bytes
        self.in_msgs[dst] += 1
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0.0) + size_bytes
        self.msgs_by_kind[kind] = self.msgs_by_kind.get(kind, 0) + 1

    @property
    def total_bytes(self) -> float:
        return float(self.out_bytes.sum())

    @property
    def total_msgs(self) -> int:
        return int(self.out_msgs.sum())

    def reset(self) -> None:
        """Zero every counter (used between warm-up and measurement)."""
        self.in_bytes[:] = 0.0
        self.out_bytes[:] = 0.0
        self.in_msgs[:] = 0
        self.out_msgs[:] = 0
        self.bytes_by_kind.clear()
        self.msgs_by_kind.clear()
        self.registry.reset("transport.")
        self.registry.reset("net.dropped")
        self.registry.reset("net.duplicated")
        self.registry.reset("net.reordered")
        self.registry.reset("faults.shed")
        self.registry.reset("breaker.open")
        self.registry.reset("durable.")
        self.registry.reset("dht.lookup_restarts")
        self.registry.reset("queue.depth.peak")

    def bytes_for(self, prefixes: Iterable[str]) -> float:
        """Total bytes over all message kinds matching any prefix
        (e.g. ``("ps_ae_", "ps_handoff")`` isolates repair traffic)."""
        prefixes = tuple(prefixes)
        return sum(
            b for k, b in self.bytes_by_kind.items() if k.startswith(prefixes)
        )


@dataclass
class Distribution:
    """A finished sample with the summaries the figures report."""

    values: np.ndarray

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Distribution":
        return cls(np.asarray(sorted(values), dtype=np.float64))

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if self.n else 0.0

    @property
    def max(self) -> float:
        return float(self.values[-1]) if self.n else 0.0

    @property
    def min(self) -> float:
        return float(self.values[0]) if self.n else 0.0

    def percentile(self, q: float) -> float:
        if not self.n:
            return 0.0
        return float(np.percentile(self.values, q))

    def cdf(self, points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(x, F(x))`` suitable for plotting/printing a CDF.

        ``x`` are ``points`` evenly-spaced sample values spanning the
        observed range; ``F(x)`` is the empirical CDF evaluated there.
        """
        if not self.n:
            return np.array([]), np.array([])
        if self.values[0] == self.values[-1]:
            # Degenerate sample (n == 1, or all values equal):
            # ``np.linspace`` would collapse to one x repeated ``points``
            # times.  The honest CDF is a single step at that value.
            return np.array([self.values[0]]), np.array([1.0])
        xs = np.linspace(self.values[0], self.values[-1], points)
        fs = np.searchsorted(self.values, xs, side="right") / self.n
        return xs, fs

    def summary(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }


def rank_desc(values: Sequence[float], top: int | None = None) -> List[float]:
    """Values sorted descending, truncated to ``top`` (Figure 4 style)."""
    out = sorted((float(v) for v in values), reverse=True)
    return out if top is None else out[:top]
