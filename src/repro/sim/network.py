"""Packet-level message fabric.

``Network.send`` charges bandwidth, looks up the one-way latency from
the topology and schedules ``handle_message`` on the destination node.
Protocol layers (DHT, pub/sub, baselines) never talk to the scheduler
directly for messaging -- everything goes through here so byte and hop
accounting stay consistent across systems being compared.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.stats import NetworkStats
from repro.sim.topology import Topology


class SimNode:
    """Base class for anything attached to the network.

    Subclasses implement :meth:`handle_message`.  ``addr`` is the dense
    network address (an index into the topology), distinct from any
    protocol-level identifier (e.g. a 64-bit Chord ID).
    """

    def __init__(self, addr: int, network: "Network") -> None:
        self.addr = addr
        self.network = network
        network.register(self)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def send(self, msg: Message) -> None:
        """Convenience wrapper; ``msg.src`` must be this node."""
        if msg.src != self.addr:
            raise ValueError(f"message src {msg.src} != node addr {self.addr}")
        self.network.send(msg)

    def handle_message(self, msg: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def alive(self) -> bool:
        """Churn hook; dead nodes drop incoming packets."""
        return True


class Network:
    """Delivers messages between registered :class:`SimNode` instances."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        stats: Optional[NetworkStats] = None,
        local_delivery_delay_ms: float = 0.0,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.stats = stats or NetworkStats(topology.size)
        self.local_delivery_delay_ms = local_delivery_delay_ms
        self._nodes: Dict[int, SimNode] = {}
        #: packets that never reached a live handler (dead destination,
        #: injected loss, partition).  Registry-backed so the count lands
        #: in telemetry manifests; the attribute API is unchanged.
        self._c_dropped = self.stats.registry.counter("net.dropped")
        # -- failure injection ------------------------------------------
        self._loss_rate = 0.0
        self._loss_rng = None
        self._partition: Optional[Dict[int, int]] = None  # addr -> group
        self._latency_factor = 1.0

    @property
    def dropped(self) -> int:
        return int(self._c_dropped.value)

    @dropped.setter
    def dropped(self, value: int) -> None:
        self._c_dropped.value = float(value)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def set_loss_rate(self, rate: float, seed: int = 0) -> None:
        """Drop each non-local packet independently with probability
        ``rate`` (deterministic per seed).  0 disables."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        import numpy as np

        self._loss_rate = rate
        self._loss_rng = np.random.default_rng(seed) if rate > 0 else None

    def clear_loss(self) -> None:
        """Heal message loss: stop dropping packets."""
        self.set_loss_rate(0.0)

    def set_partition(self, groups: Optional[Dict[int, int]]) -> None:
        """Install a network partition: packets between addresses in
        different groups are dropped.  Addresses absent from the map are
        group 0.  ``None`` heals the partition."""
        self._partition = dict(groups) if groups is not None else None

    def clear_partition(self) -> None:
        """Heal the partition: all addresses can talk again."""
        self._partition = None

    def set_latency_factor(self, factor: float) -> None:
        """Multiply every non-local one-way latency by ``factor``
        (congestion / latency-spike injection).  1.0 is nominal."""
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self._latency_factor = factor

    def clear_latency_factor(self) -> None:
        """Heal a latency spike: restore nominal link latencies."""
        self._latency_factor = 1.0

    def _injected_failure(self, msg: Message) -> bool:
        if self._partition is not None:
            if self._partition.get(msg.src, 0) != self._partition.get(msg.dst, 0):
                return True
        if self._loss_rng is not None and self._loss_rng.random() < self._loss_rate:
            return True
        return False

    # ------------------------------------------------------------------
    def register(self, node: SimNode) -> None:
        if not 0 <= node.addr < self.topology.size:
            raise ValueError(
                f"addr {node.addr} outside topology of size {self.topology.size}"
            )
        if node.addr in self._nodes:
            raise ValueError(f"addr {node.addr} already registered")
        self._nodes[node.addr] = node

    def unregister(self, addr: int) -> None:
        self._nodes.pop(addr, None)

    def node(self, addr: int) -> SimNode:
        return self._nodes[addr]

    def __contains__(self, addr: int) -> bool:
        return addr in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Charge bandwidth and schedule delivery.

        Local messages (``src == dst``) are delivered after
        ``local_delivery_delay_ms`` and are *not* charged to the
        network byte counters -- the paper measures network bandwidth.
        """
        if msg.dst not in self._nodes:
            self.dropped += 1
            return
        if msg.src == msg.dst:
            self.sim.schedule(self.local_delivery_delay_ms, self._deliver, msg, 0.0)
            return
        if self._injected_failure(msg):
            # The sender did transmit: bytes are still charged.
            self.stats.record_send(msg.src, msg.dst, msg.kind, msg.size_bytes)
            self.dropped += 1
            return
        self.stats.record_send(msg.src, msg.dst, msg.kind, msg.size_bytes)
        latency = self.topology.latency_ms(msg.src, msg.dst) * self._latency_factor
        self.sim.schedule(latency, self._deliver, msg, latency)

    def _deliver(self, msg: Message, latency: float) -> None:
        node = self._nodes.get(msg.dst)
        if node is None or not node.alive():
            self.dropped += 1
            return
        if msg.src != msg.dst:
            msg.hops += 1
            msg.path_latency += latency
        node.handle_message(msg)
