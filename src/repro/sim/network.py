"""Packet-level message fabric.

``Network.send`` charges bandwidth, looks up the one-way latency from
the topology and schedules delivery on the destination node.  Protocol
layers (DHT, pub/sub, baselines) never talk to the scheduler directly
for messaging -- everything goes through here so byte and hop
accounting stay consistent across systems being compared.

Delivery has two modes per node:

* **infinite capacity** (the seed's behaviour, and the default):
  ``handle_message`` runs the instant the packet arrives;
* **finite service** (overload extension): the packet joins the node's
  bounded ingress queue and is handled when the service loop reaches
  it, one message every ``1 / (service_rate * capacity)`` ms.  A full
  queue sheds (see :meth:`SimNode.enqueue`); every drop is counted by
  cause in :class:`~repro.sim.stats.NetworkStats`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.sim.engine import RepeatingHandle, Simulator
from repro.sim.messages import Message, event_message_bytes
from repro.sim.stats import NetworkStats
from repro.sim.topology import Topology


class SimNode:
    """Base class for anything attached to the network.

    Subclasses implement :meth:`handle_message`.  ``addr`` is the dense
    network address (an index into the topology), distinct from any
    protocol-level identifier (e.g. a 64-bit Chord ID).
    """

    def __init__(self, addr: int, network: "Network") -> None:
        self.addr = addr
        self.network = network
        #: relative processing capacity (the heterogeneous-capacity
        #: ratio of Section 4); scales the service rate.
        self.capacity: float = 1.0
        #: finite-service model: messages handled per ms per unit
        #: capacity.  ``None`` keeps the seed's infinite capacity.
        self.service_rate: Optional[float] = None
        #: bound on the ingress queue (``None`` = unbounded).
        self.queue_capacity: Optional[int] = None
        #: gray-failure degradation: service rate is multiplied by this
        #: (1.0 = healthy; a ``slow`` fault sets it into (0, 1)).
        self.slow_factor: float = 1.0
        #: two-band ingress queue: band 0 (control) is served before
        #: band 1 (bulk/event) -- see :meth:`ingress_priority`.
        self._ingress_hi: deque = deque()
        self._ingress_lo: deque = deque()
        self._serving = False
        #: high-water mark of the ingress depth over the node's life.
        self.ingress_peak = 0
        network.register(self)

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    def send(self, msg: Message) -> None:
        """Convenience wrapper; ``msg.src`` must be this node."""
        if msg.src != self.addr:
            raise ValueError(f"message src {msg.src} != node addr {self.addr}")
        self.network.send(msg)

    def handle_message(self, msg: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def alive(self) -> bool:
        """Churn hook; dead nodes drop incoming packets."""
        return True

    # ------------------------------------------------------------------
    # Finite-service ingress (overload extension)
    # ------------------------------------------------------------------
    @property
    def ingress_depth(self) -> int:
        """Messages currently waiting in the ingress queue."""
        return len(self._ingress_hi) + len(self._ingress_lo)

    def ingress_priority(self, msg: Message) -> int:
        """Admission band for ``msg``: 0 = control (served first, never
        shed while bulk traffic can be evicted instead), 1 = bulk.  The
        base fabric is priority-blind; protocol nodes override this
        (``PubSubNodeMixin`` ranks acks/repair/migration above events
        when overload protection is on)."""
        return 1

    def on_ingress_shed(self, msg: Message) -> None:
        """Hook: ``msg`` was shed on queue overflow (already counted as
        an ``overflow`` drop).  Protocol nodes override this to NACK the
        sender / account the loss; the base fabric just drops."""

    def enqueue(self, msg: Message) -> None:
        """Admit ``msg`` to the bounded ingress queue.

        On overflow the lowest-value victim is shed: an arriving bulk
        message is rejected outright, while an arriving control message
        evicts the *newest* queued bulk message (control outranks
        events).  Every shed packet is counted (``net.dropped.overflow``)
        and reported through :meth:`on_ingress_shed` -- never silent.
        """
        hi = self.ingress_priority(msg) == 0
        cap = self.queue_capacity
        if cap is not None and self.ingress_depth >= cap:
            if hi and self._ingress_lo:
                victim = self._ingress_lo.pop()
            else:
                victim = msg
            self.network.stats.record_drop("overflow")
            self.on_ingress_shed(victim)
            if victim is msg:
                self._pump()
                return
        (self._ingress_hi if hi else self._ingress_lo).append(msg)
        depth = self.ingress_depth
        if depth > self.ingress_peak:
            self.ingress_peak = depth
            self.network.stats.note_queue_depth(depth)
        self._pump()

    def _pump(self) -> None:
        if self._serving or not (self._ingress_hi or self._ingress_lo):
            return
        self._serving = True
        rate = self.service_rate * max(self.capacity * self.slow_factor, 1e-9)
        self.sim.schedule(1.0 / rate, self._service_one)

    def _service_one(self) -> None:
        self._serving = False
        if not self.alive():
            # Crash with queued work: the backlog dies with the node.
            while self._ingress_hi or self._ingress_lo:
                q = self._ingress_hi or self._ingress_lo
                q.popleft()
                self.network.stats.record_drop("dead_dst")
            return
        q = self._ingress_hi if self._ingress_hi else self._ingress_lo
        if q:
            self.handle_message(q.popleft())
        self._pump()


class Network:
    """Delivers messages between registered :class:`SimNode` instances."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        stats: Optional[NetworkStats] = None,
        local_delivery_delay_ms: float = 0.0,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.stats = stats or NetworkStats(topology.size)
        self.local_delivery_delay_ms = local_delivery_delay_ms
        self._nodes: Dict[int, SimNode] = {}
        # -- failure injection ------------------------------------------
        self._loss_rate = 0.0
        self._loss_rng = None
        self._partition: Optional[Dict[int, int]] = None  # addr -> group
        self._latency_factor = 1.0
        # -- gray-failure injection (chaos extension) -------------------
        #: token -> (src frozenset, dst frozenset): one-way link cuts.
        #: Token-keyed so concurrent cuts compose (unlike _partition).
        self._asym_cuts: Dict[int, tuple] = {}
        self._dup_rate = 0.0
        self._dup_rng = None
        self._reorder_window = 0.0
        self._reorder_rng = None

    @property
    def dropped(self) -> int:
        """Packets that never reached a live handler (all causes); the
        per-cause split is ``stats.dropped_by_cause``."""
        return self.stats.dropped

    @dropped.setter
    def dropped(self, value: int) -> None:
        self.stats.dropped = value

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def set_loss_rate(self, rate: float, seed: int = 0) -> None:
        """Drop each non-local packet independently with probability
        ``rate`` (deterministic per seed).  0 disables."""
        if not 0.0 <= rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        import numpy as np

        self._loss_rate = rate
        self._loss_rng = np.random.default_rng(seed) if rate > 0 else None

    def clear_loss(self) -> None:
        """Heal message loss: stop dropping packets."""
        self.set_loss_rate(0.0)

    def set_partition(self, groups: Optional[Dict[int, int]]) -> None:
        """Install a network partition: packets between addresses in
        different groups are dropped.  Addresses absent from the map are
        group 0.  ``None`` heals the partition."""
        self._partition = dict(groups) if groups is not None else None

    def clear_partition(self) -> None:
        """Heal the partition: all addresses can talk again."""
        self._partition = None

    def set_latency_factor(self, factor: float) -> None:
        """Multiply every non-local one-way latency by ``factor``
        (congestion / latency-spike injection).  1.0 is nominal."""
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self._latency_factor = factor

    def clear_latency_factor(self) -> None:
        """Heal a latency spike: restore nominal link latencies."""
        self._latency_factor = 1.0

    # -- gray failures (chaos extension) --------------------------------
    def set_slow(self, addrs, factor: float) -> None:
        """Gray failure: nodes in ``addrs`` stay alive but serve their
        ingress queues at ``factor`` of their nominal rate.  Only
        observable under the finite service model (like storms):
        infinite-capacity nodes have no service time to stretch."""
        if not 0.0 < factor < 1.0:
            raise ValueError("slow factor must be in (0, 1)")
        for addr in addrs:
            node = self._nodes.get(addr)
            if node is not None:
                node.slow_factor = factor

    def clear_slow(self, addrs) -> None:
        """Heal a slow fault: restore nominal service rates."""
        for addr in addrs:
            node = self._nodes.get(addr)
            if node is not None:
                node.slow_factor = 1.0

    def add_asym_cut(self, token: int, src_addrs, dst_addrs) -> None:
        """Install a one-way link cut: packets from ``src_addrs`` to
        ``dst_addrs`` are dropped (cause ``partition``) while the
        reverse direction still flows.  ``token`` names the cut so
        concurrent cuts compose and heal independently."""
        if token in self._asym_cuts:
            raise ValueError(f"asym cut token {token} already active")
        self._asym_cuts[token] = (frozenset(src_addrs), frozenset(dst_addrs))

    def remove_asym_cut(self, token: int) -> None:
        """Heal the one-way cut named ``token`` (idempotent)."""
        self._asym_cuts.pop(token, None)

    def set_duplicate(self, rate: float, seed: int = 0) -> None:
        """Gray failure: deliver each non-local packet a *second* time
        with probability ``rate`` (deterministic per seed).  0 disables."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("duplicate rate must be in [0, 1]")
        import numpy as np

        self._dup_rate = rate
        self._dup_rng = np.random.default_rng(seed) if rate > 0 else None

    def clear_duplicate(self) -> None:
        """Heal duplication: packets are delivered once again."""
        self.set_duplicate(0.0)

    def set_reorder(self, window_ms: float, seed: int = 0) -> None:
        """Gray failure: every non-local packet picks up an adversarial
        extra delay uniform in [0, ``window_ms``), reordering
        otherwise-FIFO streams (deterministic per seed).  0 disables."""
        if window_ms < 0:
            raise ValueError("reorder window must be non-negative")
        import numpy as np

        self._reorder_window = window_ms
        self._reorder_rng = (
            np.random.default_rng(seed) if window_ms > 0 else None
        )

    def clear_reorder(self) -> None:
        """Heal reordering: links are FIFO again."""
        self.set_reorder(0.0)

    def start_storm(
        self,
        addr: int,
        rate_msgs_per_ms: float,
        until_ms: float,
        size_bytes: Optional[int] = None,
    ) -> RepeatingHandle:
        """Flood ``addr`` with synthetic ``ps_storm`` packets.

        One packet enters ``addr``'s ingress every ``1 / rate`` ms until
        ``until_ms`` (exclusive).  The packets are pure load -- the
        pub/sub layer handles them as no-ops -- so their only effect is
        the service time they consume, which is exactly what an event
        storm at a hot rendezvous zone looks like from the victim's
        queue.  Returns the repeating handle (cancel to end early).
        """
        if rate_msgs_per_ms <= 0:
            raise ValueError("storm rate must be positive (msgs/ms)")
        if size_bytes is None:
            size_bytes = event_message_bytes(1)
        return self.sim.schedule_every(
            1.0 / rate_msgs_per_ms,
            self._storm_tick,
            addr,
            size_bytes,
            until=until_ms,
        )

    def _storm_tick(self, addr: int, size_bytes: int) -> None:
        node = self._nodes.get(addr)
        if node is None or not node.alive():
            return
        msg = Message(
            src=addr,
            dst=addr,
            kind="ps_storm",
            payload=None,
            size_bytes=size_bytes,
            root_time=self.sim.now,
        )
        self.stats.record_send(addr, addr, "ps_storm", size_bytes)
        self._deliver(msg, 0.0)

    def _injected_failure(self, msg: Message) -> Optional[str]:
        """Drop cause for an injected fault, or ``None`` to deliver."""
        if self._partition is not None:
            if self._partition.get(msg.src, 0) != self._partition.get(msg.dst, 0):
                return "partition"
        for src_set, dst_set in self._asym_cuts.values():
            if msg.src in src_set and msg.dst in dst_set:
                return "partition"
        if self._loss_rng is not None and self._loss_rng.random() < self._loss_rate:
            return "loss"
        return None

    # ------------------------------------------------------------------
    def register(self, node: SimNode) -> None:
        if not 0 <= node.addr < self.topology.size:
            raise ValueError(
                f"addr {node.addr} outside topology of size {self.topology.size}"
            )
        if node.addr in self._nodes:
            raise ValueError(f"addr {node.addr} already registered")
        self._nodes[node.addr] = node

    def unregister(self, addr: int) -> None:
        self._nodes.pop(addr, None)

    def node(self, addr: int) -> SimNode:
        return self._nodes[addr]

    def __contains__(self, addr: int) -> bool:
        return addr in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def send(self, msg: Message) -> None:
        """Charge bandwidth and schedule delivery.

        Local messages (``src == dst``) are delivered after
        ``local_delivery_delay_ms`` and are *not* charged to the
        network byte counters -- the paper measures network bandwidth.
        """
        if msg.dst not in self._nodes:
            self.stats.record_drop("dead_dst")
            return
        if msg.src == msg.dst:
            self.sim.schedule(self.local_delivery_delay_ms, self._deliver, msg, 0.0)
            return
        cause = self._injected_failure(msg)
        if cause is not None:
            # The sender did transmit: bytes are still charged.
            self.stats.record_send(msg.src, msg.dst, msg.kind, msg.size_bytes)
            self.stats.record_drop(cause)
            return
        self.stats.record_send(msg.src, msg.dst, msg.kind, msg.size_bytes)
        latency = self.topology.latency_ms(msg.src, msg.dst) * self._latency_factor
        if self._reorder_rng is not None:
            # Adversarial per-packet jitter: later sends can arrive first.
            latency += float(self._reorder_rng.uniform(0.0, self._reorder_window))
            self.stats.record_reorder()
        self.sim.schedule(latency, self._deliver, msg, latency)
        if self._dup_rng is not None and self._dup_rng.random() < self._dup_rate:
            # The network ghosts a second copy of the same packet.  A
            # fresh Message (not the same object) keeps the hop/latency
            # mutation in _deliver from compounding across the two
            # deliveries; the payload is shared, exactly like a
            # retransmitted packet, so dedup layers see the same bits.
            import dataclasses

            ghost = dataclasses.replace(msg)
            ghost_latency = latency + float(self._dup_rng.uniform(0.0, latency))
            self.stats.record_duplicate()
            self.sim.schedule(ghost_latency, self._deliver, ghost, ghost_latency)

    def _deliver(self, msg: Message, latency: float) -> None:
        node = self._nodes.get(msg.dst)
        if node is None or not node.alive():
            self.stats.record_drop("dead_dst")
            return
        if msg.src != msg.dst:
            msg.hops += 1
            msg.path_latency += latency
        if node.service_rate is None:
            node.handle_message(msg)
        else:
            node.enqueue(msg)
