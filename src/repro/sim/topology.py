"""Latency topologies.

The paper drives its simulator with the King dataset -- measured
pairwise RTTs between 1740 DNS servers, with an average RTT of roughly
180 ms.  That dataset is not redistributable here, so
:class:`KingLikeTopology` synthesises a stand-in with the same
*structural* properties the evaluation depends on:

* geographic clustering (so proximity-neighbour selection has real
  proximity to exploit),
* symmetric, roughly metric RTTs with bounded per-pair jitter,
* a calibrated mean RTT (default 180 ms for any network size),
* O(N) memory, so the 16k-node scalability sweep (Figure 5) fits in RAM
  where an explicit 16k x 16k matrix would not.

All topologies are deterministic functions of their seed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

#: Default mean RTT (ms) of the King dataset used in the paper.
KING_MEAN_RTT_MS = 180.0


class Topology(ABC):
    """Pairwise latency oracle over ``size`` network addresses."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of addressable endpoints."""

    @abstractmethod
    def rtt_ms(self, a: int, b: int) -> float:
        """Round-trip time between endpoints ``a`` and ``b`` (ms)."""

    def latency_ms(self, a: int, b: int) -> float:
        """One-way latency; the packet-level convention is RTT / 2."""
        if a == b:
            return 0.0
        return self.rtt_ms(a, b) / 2.0

    def rtt_many(self, a: int, others: Sequence[int]) -> np.ndarray:
        """Vector of RTTs from ``a`` to each endpoint in ``others``.

        Subclasses override this when a vectorised path exists; the
        default loops.  Used heavily by proximity-neighbour selection.
        """
        return np.array([self.rtt_ms(a, b) for b in others], dtype=np.float64)

    def mean_rtt(self, sample_pairs: int = 50_000, seed: int = 12345) -> float:
        """Estimate the mean pairwise RTT by sampling distinct pairs."""
        n = self.size
        if n < 2:
            return 0.0
        rng = np.random.default_rng(seed)
        total_pairs = n * (n - 1) // 2
        if total_pairs <= sample_pairs:
            acc = 0.0
            cnt = 0
            for a in range(n):
                for b in range(a + 1, n):
                    acc += self.rtt_ms(a, b)
                    cnt += 1
            return acc / cnt
        a = rng.integers(0, n, size=sample_pairs)
        b = rng.integers(0, n, size=sample_pairs)
        mask = a != b
        a, b = a[mask], b[mask]
        return float(np.mean([self.rtt_ms(int(x), int(y)) for x, y in zip(a, b)]))


class ConstantTopology(Topology):
    """Every distinct pair has the same RTT.  Useful in unit tests."""

    def __init__(self, size: int, rtt: float = 100.0) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        self._size = size
        self._rtt = float(rtt)

    @property
    def size(self) -> int:
        return self._size

    def rtt_ms(self, a: int, b: int) -> float:
        self._check(a)
        self._check(b)
        return 0.0 if a == b else self._rtt

    def rtt_many(self, a: int, others: Sequence[int]) -> np.ndarray:
        out = np.full(len(others), self._rtt, dtype=np.float64)
        out[np.asarray(others) == a] = 0.0
        return out

    def _check(self, i: int) -> None:
        if not 0 <= i < self._size:
            raise IndexError(f"endpoint {i} out of range [0, {self._size})")


class ExplicitTopology(Topology):
    """Topology backed by a full RTT matrix (small networks / tests)."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if not np.allclose(matrix, matrix.T):
            raise ValueError("RTT matrix must be symmetric")
        if np.any(matrix < 0):
            raise ValueError("RTTs must be non-negative")
        if np.any(np.diag(matrix) != 0):
            raise ValueError("self-RTT must be zero")
        self._m = matrix

    @property
    def size(self) -> int:
        return self._m.shape[0]

    def rtt_ms(self, a: int, b: int) -> float:
        return float(self._m[a, b])

    def rtt_many(self, a: int, others: Sequence[int]) -> np.ndarray:
        return self._m[a, np.asarray(others, dtype=np.intp)]


def _pair_jitter(a: int, b: int, amplitude: float) -> float:
    """Deterministic symmetric multiplicative jitter in [1-amp, 1+amp].

    A cheap integer mix keyed on the unordered pair; avoids storing any
    per-pair state while keeping RTTs symmetric and reproducible.
    """
    lo, hi = (a, b) if a < b else (b, a)
    h = (lo * 2654435761 + hi * 40503 + 0x9E3779B9) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x45D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    unit = h / 0xFFFFFFFF  # in [0, 1]
    return 1.0 + amplitude * (2.0 * unit - 1.0)


def _pair_jitter_vec(a: int, idx: np.ndarray, amplitude: float) -> np.ndarray:
    """Vectorised :func:`_pair_jitter` for one source against many peers.

    Bit-for-bit identical to the scalar version (tests assert this);
    proximity-neighbour selection evaluates millions of candidate RTTs
    while building large overlays, so this path must be NumPy-native.
    """
    idx = idx.astype(np.uint64)
    av = np.uint64(a)
    lo = np.minimum(av, idx)
    hi = np.maximum(av, idx)
    mask32 = np.uint64(0xFFFFFFFF)
    h = (lo * np.uint64(2654435761) + hi * np.uint64(40503) + np.uint64(0x9E3779B9)) & mask32
    h ^= h >> np.uint64(16)
    h = (h * np.uint64(0x45D9F3B)) & mask32
    h ^= h >> np.uint64(16)
    unit = h.astype(np.float64) / float(0xFFFFFFFF)
    return 1.0 + amplitude * (2.0 * unit - 1.0)


class KingLikeTopology(Topology):
    """Synthetic clustered Internet-latency model (King-dataset stand-in).

    Nodes are placed in a 2-D plane as a mixture of Gaussian clusters
    (continents / ISPs); the RTT between two nodes is::

        rtt(a, b) = (base + scale * ||coord_a - coord_b||) * jitter(a, b)

    ``scale`` is calibrated at construction so the sampled mean RTT
    matches ``target_mean_rtt_ms``.
    """

    def __init__(
        self,
        size: int,
        seed: int = 1,
        target_mean_rtt_ms: float = KING_MEAN_RTT_MS,
        num_clusters: int = 24,
        cluster_sigma: float = 0.045,
        base_rtt_ms: float = 4.0,
        jitter: float = 0.15,
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        if target_mean_rtt_ms <= base_rtt_ms and size > 1:
            raise ValueError("target mean RTT must exceed the base RTT")
        self._size = size
        self._jitter = float(jitter)
        self._base = float(base_rtt_ms)
        rng = np.random.default_rng(seed)

        k = max(1, min(num_clusters, size))
        centers = rng.uniform(0.0, 1.0, size=(k, 2))
        # Zipf-ish cluster popularity: big ISPs host many nodes.
        weights = 1.0 / np.arange(1, k + 1)
        weights /= weights.sum()
        assignment = rng.choice(k, size=size, p=weights)
        self.coords = centers[assignment] + rng.normal(
            0.0, cluster_sigma, size=(size, 2)
        )
        self.cluster_of = assignment

        self._scale = 1.0
        if size > 1:
            mean_now = self._sample_mean(rng)
            self._scale = (target_mean_rtt_ms - self._base) / max(mean_now, 1e-12)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    def _sample_mean(self, rng: np.random.Generator, pairs: int = 40_000) -> float:
        """Mean of ``||coord_a - coord_b||`` over sampled distinct pairs."""
        n = self._size
        total = n * (n - 1) // 2
        if total <= pairs:
            a, b = np.triu_indices(n, k=1)
        else:
            a = rng.integers(0, n, size=pairs)
            b = rng.integers(0, n, size=pairs)
            mask = a != b
            a, b = a[mask], b[mask]
        d = np.linalg.norm(self.coords[a] - self.coords[b], axis=1)
        return float(d.mean())

    def rtt_ms(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        dx = self.coords[a, 0] - self.coords[b, 0]
        dy = self.coords[a, 1] - self.coords[b, 1]
        dist = math.hypot(dx, dy)
        return (self._base + self._scale * dist) * _pair_jitter(a, b, self._jitter)

    def rtt_many(self, a: int, others: Sequence[int]) -> np.ndarray:
        idx = np.asarray(others, dtype=np.intp)
        d = np.linalg.norm(self.coords[idx] - self.coords[a], axis=1)
        rtts = self._base + self._scale * d
        out = rtts * _pair_jitter_vec(a, idx, self._jitter)
        out[idx == a] = 0.0
        return out


def build_topology(
    size: int,
    kind: str = "king",
    seed: int = 1,
    target_mean_rtt_ms: Optional[float] = None,
) -> Topology:
    """Factory used by the experiment harness.

    ``kind`` is one of ``king`` (default), ``constant``.
    """
    if kind == "king":
        return KingLikeTopology(
            size,
            seed=seed,
            target_mean_rtt_ms=target_mean_rtt_ms or KING_MEAN_RTT_MS,
        )
    if kind == "constant":
        return ConstantTopology(size, rtt=target_mean_rtt_ms or 100.0)
    raise ValueError(f"unknown topology kind: {kind!r}")
