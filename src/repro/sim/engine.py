"""Deterministic discrete-event scheduler.

The simulator keeps a priority queue of ``(time, sequence, callback)``
entries.  Ties on time are broken by insertion order, which makes every
run fully deterministic for a fixed seed and fixed call ordering -- the
property every experiment in this repository relies on.

Time is a ``float`` in **milliseconds**, matching the paper's reporting
units (latencies from the King dataset are millisecond RTTs).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class EventHandle:
    """Cancellation token returned by :meth:`Simulator.schedule`.

    Cancelling does not remove the heap entry (that would be O(n)); the
    entry is skipped when popped.  The owning simulator keeps a live
    count (:attr:`Simulator.live`) in sync: cancelling before the event
    fires decrements it exactly once.
    """

    __slots__ = ("time", "seq", "cancelled", "_done", "_sim")

    def __init__(
        self, time: float, seq: int, sim: Optional["Simulator"] = None
    ) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._done = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self._done and self._sim is not None:
            self._sim._live -= 1
            self._done = True


class RepeatingHandle:
    """Cancellation token for :meth:`Simulator.schedule_every`."""

    __slots__ = ("cancelled", "_inner")

    def __init__(self) -> None:
        self.cancelled = False
        self._inner: Optional[EventHandle] = None

    def cancel(self) -> None:
        """Stop future firings.  Idempotent."""
        self.cancelled = True
        if self._inner is not None:
            self._inner.cancel()


class Simulator:
    """A discrete-event simulation engine.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, EventHandle, Callable[..., Any], tuple]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._processed: int = 0
        self._live: int = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Raw heap size, *including* cancelled stubs (cancellation
        leaves the entry in place and skips it at pop).  For "how much
        work is actually left" use :attr:`live`."""
        return len(self._queue)

    @property
    def live(self) -> int:
        """Number of events still queued, excluding cancelled stubs.

        ``pending`` overstates remaining work whenever timers were
        cancelled (every acked reliable packet leaves one stub); this is
        the honest count for progress displays and telemetry sampling.
        """
        return self._live

    @property
    def processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` milliseconds of simulated time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        handle = EventHandle(time, self._seq, self)
        heapq.heappush(self._queue, (time, self._seq, handle, fn, args))
        self._seq += 1
        self._live += 1
        return handle

    def schedule_every(
        self,
        interval_ms: float,
        fn: Callable[..., Any],
        *args: Any,
        until: Optional[float] = None,
    ) -> RepeatingHandle:
        """Run ``fn(*args)`` every ``interval_ms``, first firing one
        interval from now.

        ``until`` bounds the series (no firing strictly after it), which
        keeps ``run_until_idle`` terminating; an unbounded series must be
        cancelled via the returned handle before draining the queue.
        Used by telemetry's periodic metric sampling and handy for any
        maintenance-style loop.
        """
        if interval_ms <= 0:
            raise ValueError(f"non-positive interval: {interval_ms!r}")
        handle = RepeatingHandle()

        def _tick() -> None:
            if handle.cancelled:
                return
            fn(*args)
            nxt = self._now + interval_ms
            if until is None or nxt <= until:
                handle._inner = self.schedule(interval_ms, _tick)

        first = self._now + interval_ms
        if until is None or first <= until:
            handle._inner = self.schedule(interval_ms, _tick)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when idle."""
        while self._queue:
            time, _seq, handle, fn, args = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            handle._done = True
            self._live -= 1
            self._now = time
            fn(*args)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time.
            The clock is advanced to ``until`` when the queue drains early.
        max_events:
            Safety valve; stop after executing this many callbacks.

        Returns the number of callbacks executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            time, _seq, handle, fn, args = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            handle._done = True
            self._live -= 1
            self._now = time
            fn(*args)
            self._processed += 1
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return executed

    def run_until_idle(self, max_events: int = 100_000_000) -> int:
        """Drain everything.  Raises if ``max_events`` is exceeded."""
        executed = self.run(max_events=max_events)
        if self._queue and executed >= max_events:
            raise RuntimeError(
                f"simulation did not converge within {max_events} events"
            )
        return executed
