"""Chaos nemesis: seeded, budgeted random fault-schedule generation.

Hand-written fault schedules only probe failure modes someone already
imagined.  The nemesis searches fault-schedule space instead: from a
seed and a :class:`ChaosBudget` it samples valid random
:class:`~repro.faults.schedule.FaultSchedule` instances -- mixing
crashes, flaps, partitions (symmetric and one-way), loss, latency
spikes, slow nodes, duplication and reordering -- while respecting the
safety floors that keep a round *meaningful*:

* **heal-by-end**: every window closes and every crashed node rejoins
  before ``t_end``, with at least ``min_heal_ms`` of quiet tail so the
  system has simulated time to converge before invariants are checked;
* **replica floors**: never crash-overlap ``replica_k`` ring-consecutive
  nodes (which would destroy every replica of some zone's state) unless
  ``allow_full_zone_crash`` is set;
* **fleet fraction**: at most ``max_crash_fraction`` of the fleet is
  down at any instant, and ``protect`` addresses (publishers, oracles)
  are never crash-stopped or flapped.

Every schedule the nemesis emits goes through
:meth:`FaultSchedule.from_spec`, so all build-time validation applies
and the emitted spec round-trips to JSON for the campaign's
failing-schedule files and the shrinker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.faults.schedule import FaultSchedule, FaultScheduleError

#: Fault kinds the nemesis can draw, with default mix weights.  Crashy
#: kinds are weighted up because they are what the resilience stack is
#: for; gray kinds keep steady pressure on the exactly-once/ordering
#: layers.
DEFAULT_KIND_WEIGHTS: Dict[str, float] = {
    "crash": 3.0,
    "flap": 1.0,
    "partition": 1.0,
    "asym_partition": 1.0,
    "loss": 2.0,
    "latency": 1.0,
    "slow": 1.0,
    "duplicate": 1.0,
    "reorder": 1.0,
}


@dataclass(frozen=True)
class ChaosBudget:
    """Bounds on what a generated schedule may do.

    The budget is the experiment's contract with the nemesis: anything
    within it must be survivable (durable mode) or at least checkable
    (best-effort mode), so a violation under a within-budget schedule
    is a real bug, not an over-aggressive test.
    """

    #: window in which faults may start / must have healed (ms).
    t_start: float = 2_000.0
    t_end: float = 30_000.0
    #: total faults drawn per schedule.
    max_faults: int = 6
    #: crash-kind faults whose down-windows may overlap at one instant.
    max_concurrent: int = 2
    #: fraction of the fleet allowed down at any instant.
    max_crash_fraction: float = 0.2
    #: relative draw weights per fault kind (missing kind = never drawn).
    kind_weights: Tuple[Tuple[str, float], ...] = tuple(
        sorted(DEFAULT_KIND_WEIGHTS.items())
    )
    #: quiet tail before t_end: every fault heals by t_end - min_heal_ms.
    min_heal_ms: float = 5_000.0
    #: addresses never crash-stopped or flapped (publishers, oracles).
    protect: Tuple[int, ...] = ()
    #: if False (the default safety floor), reject crash-overlaps of
    #: replica_k ring-consecutive nodes -- the schedule must never
    #: destroy every replica of a zone's state at once.
    allow_full_zone_crash: bool = False

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError("budget window must have positive length")
        if self.max_faults < 1:
            raise ValueError("max_faults must be >= 1")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if not 0.0 < self.max_crash_fraction <= 1.0:
            raise ValueError("max_crash_fraction must be in (0, 1]")
        if self.min_heal_ms < 0:
            raise ValueError("min_heal_ms must be non-negative")
        if self.t_end - self.min_heal_ms <= self.t_start:
            raise ValueError(
                "heal tail leaves no room for faults "
                "(t_end - min_heal_ms <= t_start)"
            )
        weights = dict(self.kind_weights)
        unknown = set(weights) - set(DEFAULT_KIND_WEIGHTS)
        if unknown:
            raise ValueError(f"unknown fault kinds in mix: {sorted(unknown)}")
        if not weights or all(w <= 0 for w in weights.values()):
            raise ValueError("kind mix needs at least one positive weight")
        if any(w < 0 for w in weights.values()):
            raise ValueError("kind weights must be non-negative")

    @classmethod
    def build(cls, kind_weights: Optional[Dict[str, float]] = None, **kw):
        """Convenience constructor taking the mix as a plain dict."""
        if kind_weights is not None:
            kw["kind_weights"] = tuple(sorted(kind_weights.items()))
        return cls(**kw)


@dataclass
class _Interval:
    """A scheduled down-window of one node (crash or flap)."""

    addr: int
    t0: float
    t1: float


class ChaosNemesis:
    """Samples valid random fault schedules from a seed and a budget.

    Deterministic: ``ChaosNemesis(n, budget, seed).generate(r)`` is a
    pure function of ``(n, budget, seed, r, ring, replica_k)`` -- the
    property every replay and every shrink step relies on.

    ``ring`` is the fleet's addresses in ring (identifier) order when
    known; the replica-floor check rejects crash-overlaps of
    ``replica_k`` *ring-consecutive* members, because those are the
    nodes that hold all copies of some zone's state.  Without a ring,
    address order is used (still a meaningful floor for dense fleets).
    """

    def __init__(
        self,
        num_nodes: int,
        budget: ChaosBudget,
        seed: int = 0,
        ring: Optional[Iterable[int]] = None,
        replica_k: int = 1,
    ) -> None:
        if num_nodes < 4:
            raise ValueError("chaos needs at least 4 nodes")
        self.num_nodes = num_nodes
        self.budget = budget
        self.seed = seed
        self.ring: Tuple[int, ...] = (
            tuple(ring) if ring is not None else tuple(range(num_nodes))
        )
        if replica_k < 1:
            raise ValueError("replica_k must be >= 1")
        self.replica_k = replica_k
        #: position of each addr on the ring (floor check).
        self._ring_pos = {a: i for i, a in enumerate(self.ring)}
        protected = set(budget.protect)
        self._candidates = [
            a for a in range(num_nodes) if a not in protected
        ]
        if len(self._candidates) < 2:
            raise ValueError("not enough unprotected nodes for chaos")

    # ------------------------------------------------------------------
    def generate(self, round_index: int = 0) -> FaultSchedule:
        """Emit one valid random schedule for ``round_index``."""
        spec = self.generate_spec(round_index)
        return FaultSchedule.from_spec(spec)

    def generate_spec(self, round_index: int = 0) -> List[Dict]:
        """The declarative form of :meth:`generate` (what campaign
        failure files store and the shrinker mutates)."""
        b = self.budget
        rng = np.random.default_rng((self.seed, round_index))
        kinds, weights = zip(*[(k, w) for k, w in b.kind_weights if w > 0])
        p = np.asarray(weights, dtype=float)
        p /= p.sum()

        spec: List[Dict] = []
        down: List[_Interval] = []
        #: single-active window kinds already placed: kind -> [(t0, t1)].
        placed: Dict[str, List[Tuple[float, float]]] = {}
        heal_by = b.t_end - b.min_heal_ms

        n_faults = int(rng.integers(1, b.max_faults + 1))
        for _ in range(n_faults):
            kind = str(rng.choice(kinds, p=p))
            # A draw that cannot be placed (window conflict, crash
            # budget exhausted) is simply skipped: the schedule stays
            # within budget by construction rather than by rejection
            # sampling over whole schedules.
            entry = self._draw(kind, rng, down, placed, heal_by)
            if entry is not None:
                spec.append(entry)
        if not spec:
            # Degenerate draw (every sample conflicted): fall back to a
            # single crash/rejoin so a round always exercises something.
            victim = int(rng.choice(self._candidates))
            t0 = float(rng.uniform(b.t_start, (b.t_start + heal_by) / 2))
            t1 = float(rng.uniform(t0 + 500.0, heal_by))
            spec.append({"at": t0, "crash": [victim]})
            spec.append({"at": t1, "rejoin": [victim]})
        # Canonical order: by start time, then kind -- deterministic and
        # stable under JSON round-trips.
        spec = _flatten_pairs(spec)
        spec.sort(key=_spec_sort_key)
        return spec

    # ------------------------------------------------------------------
    def _window(
        self, rng, heal_by: float, min_len: float = 500.0
    ) -> Tuple[float, float]:
        b = self.budget
        t0 = float(rng.uniform(b.t_start, heal_by - min_len))
        t1 = float(rng.uniform(t0 + min_len, heal_by))
        return t0, t1

    def _free_window(
        self,
        kind: str,
        rng,
        placed: Dict[str, List[Tuple[float, float]]],
        heal_by: float,
        min_len: float = 500.0,
        tries: int = 8,
    ) -> Optional[Tuple[float, float]]:
        """A window not overlapping previously placed ``kind`` windows
        (the DSL's single-active rule), or None if the draw conflicts."""
        existing = placed.setdefault(kind, [])
        for _ in range(tries):
            t0, t1 = self._window(rng, heal_by, min_len)
            if not any(t0 < w1 and w0 < t1 for w0, w1 in existing):
                existing.append((t0, t1))
                return t0, t1
        return None

    def _crash_ok(self, addr: int, t0: float, t1: float, down: List[_Interval]) -> bool:
        """Would taking ``addr`` down over [t0, t1) stay within the crash
        budget and the replica floor?"""
        b = self.budget
        overlapping = [
            iv for iv in down if iv.t0 < t1 and t0 < iv.t1 and iv.addr != addr
        ]
        if any(iv.addr == addr for iv in down if iv.t0 < t1 and t0 < iv.t1):
            return False  # the node is already down somewhere in there
        if len(overlapping) + 1 > b.max_concurrent:
            return False
        if (len(overlapping) + 1) > max(
            1, int(b.max_crash_fraction * self.num_nodes)
        ):
            return False
        if not b.allow_full_zone_crash and self.replica_k >= 2:
            # Reject a down-set containing replica_k ring-consecutive
            # nodes: that wipes every copy of some zone's state.
            down_pos = sorted(
                self._ring_pos[iv.addr]
                for iv in overlapping
                if iv.addr in self._ring_pos
            )
            pos = self._ring_pos.get(addr)
            if pos is not None:
                down_pos = sorted(down_pos + [pos])
                if _has_consecutive_run(
                    down_pos, self.replica_k, len(self.ring)
                ):
                    return False
        return True

    def _draw(
        self,
        kind: str,
        rng,
        down: List[_Interval],
        placed: Dict[str, List[Tuple[float, float]]],
        heal_by: float,
    ) -> Optional[Dict]:
        b = self.budget
        if kind == "crash":
            addr = int(rng.choice(self._candidates))
            t0, t1 = self._window(rng, heal_by, min_len=1_000.0)
            if not self._crash_ok(addr, t0, t1, down):
                return None
            down.append(_Interval(addr, t0, t1))
            # Emitted as one crash + one rejoin entry; _spec_sort_key
            # keeps them ordered, from_spec validates the pairing.
            return {"_pair": [
                {"at": t0, "crash": [addr]},
                {"at": t1, "rejoin": [addr]},
            ]}
        if kind == "flap":
            addr = int(rng.choice(self._candidates))
            t0, t1 = self._window(rng, heal_by, min_len=2_000.0)
            if not self._crash_ok(addr, t0, t1, down):
                return None
            period = float(rng.uniform(500.0, max(600.0, (t1 - t0) / 3)))
            if t1 < t0 + period:
                return None
            down.append(_Interval(addr, t0, t1))
            return {"from": t0, "to": t1, "flap": {"addr": addr, "period": period}}
        if kind == "partition":
            w = self._free_window("partition", rng, placed, heal_by)
            if w is None:
                return None
            t0, t1 = w
            # Cut off a small random minority group.
            size = int(rng.integers(1, max(2, self.num_nodes // 4)))
            minority = rng.choice(self.num_nodes, size=size, replace=False)
            groups = {int(a): 1 for a in sorted(minority)}
            return {"from": t0, "to": t1, "partition": groups}
        if kind == "asym_partition":
            # Concurrent cuts are legal; no single-active window needed.
            t0, t1 = self._window(rng, heal_by)
            k = max(1, self.num_nodes // 8)
            picks = rng.choice(self.num_nodes, size=min(2 * k, self.num_nodes), replace=False)
            src = sorted(int(a) for a in picks[:k])
            dst = sorted(int(a) for a in picks[k:])
            if not src or not dst:
                return None
            return {
                "from": t0, "to": t1,
                "asym_partition": {"src": src, "dst": dst},
            }
        if kind == "loss":
            w = self._free_window("loss", rng, placed, heal_by)
            if w is None:
                return None
            t0, t1 = w
            return {
                "from": t0, "to": t1,
                "loss": float(rng.uniform(0.02, 0.25)),
                "seed": int(rng.integers(1, 2**31)),
            }
        if kind == "latency":
            w = self._free_window("latency", rng, placed, heal_by)
            if w is None:
                return None
            t0, t1 = w
            return {"from": t0, "to": t1, "latency": float(rng.uniform(1.5, 5.0))}
        if kind == "slow":
            t0, t1 = self._window(rng, heal_by)
            size = int(rng.integers(1, max(2, self.num_nodes // 8)))
            addrs = sorted(
                int(a) for a in rng.choice(self.num_nodes, size=size, replace=False)
            )
            # Per-addr single-active: skip the draw on any conflict.
            for a in addrs:
                key = f"slow[{a}]"
                if any(
                    t0 < w1 and w0 < t1 for w0, w1 in placed.setdefault(key, [])
                ):
                    return None
            for a in addrs:
                placed[f"slow[{a}]"].append((t0, t1))
            return {
                "from": t0, "to": t1,
                "slow": {"addrs": addrs, "factor": float(rng.uniform(0.05, 0.5))},
            }
        if kind == "duplicate":
            w = self._free_window("duplicate", rng, placed, heal_by)
            if w is None:
                return None
            t0, t1 = w
            return {
                "from": t0, "to": t1,
                "duplicate": float(rng.uniform(0.05, 0.5)),
                "seed": int(rng.integers(1, 2**31)),
            }
        if kind == "reorder":
            w = self._free_window("reorder", rng, placed, heal_by)
            if w is None:
                return None
            t0, t1 = w
            return {
                "from": t0, "to": t1,
                "reorder": float(rng.uniform(50.0, 500.0)),
                "seed": int(rng.integers(1, 2**31)),
            }
        raise FaultScheduleError(f"nemesis cannot draw kind {kind!r}")


def _spec_sort_key(entry: Dict) -> Tuple:
    t = entry.get("at", entry.get("from", 0.0))
    key = next(k for k in entry if k not in ("at", "from", "to", "seed", "_pair"))
    return (float(t), key)


def _flatten_pairs(spec: List[Dict]) -> List[Dict]:
    out: List[Dict] = []
    for entry in spec:
        if "_pair" in entry:
            out.extend(entry["_pair"])
        else:
            out.append(entry)
    return out


def _has_consecutive_run(positions: List[int], k: int, ring_len: int) -> bool:
    """Is there a run of ``k`` consecutive ring positions in ``positions``
    (wrapping)?  ``positions`` must be sorted and duplicate-free."""
    if k <= 1:
        return bool(positions)
    if len(positions) < k:
        return False
    pos = set(positions)
    for p in positions:
        if all((p + i) % ring_len in pos for i in range(k)):
            return True
    return False
