"""Deterministic fault-schedule injection.

The seed repository injected failures ad hoc: experiments called
``Network.set_loss_rate`` / ``set_partition`` at fixed wall points and
scheduled ``node.fail()`` by hand, which made fault timelines
impossible to reuse, compose or replay.  :class:`FaultSchedule` fixes
that: a schedule is an ordered list of primitive actions pinned to
simulated time, built either through the fluent builder methods, from
the declarative spec DSL (:meth:`FaultSchedule.from_spec`), or sampled
deterministically from a seed (:meth:`FaultSchedule.random_churn`, or
the full nemesis in :mod:`repro.faults.chaos`).
``install(system)`` arms every action on the system's simulator clock;
nothing happens until the clock reaches it.

Primitives:

* ``crash(t, addrs)`` -- crash-stop nodes (volatile surrogate state lost);
* ``rejoin(t, addrs)`` -- crashed nodes re-enter through Chord's join
  protocol and resync their arcs (see ``HyperSubSystem.rejoin_node``);
* ``partition(t0, t1, groups)`` -- a partition window that heals itself;
* ``loss(t0, rate, until=t1)`` -- an i.i.d. message-loss window;
* ``latency_spike(t0, t1, factor)`` -- links slow down by ``factor``;
* ``storm(t0, t1, addr, rate)`` -- flood ``addr`` with ``rate`` synthetic
  packets per ms (overload injection; needs the finite service model to
  have any observable effect -- see docs/FAULTS.md).

Gray-failure primitives (chaos extension; the node or link is *not*
dead, it is degraded -- the failure modes health checks miss):

* ``slow(t0, t1, addrs, factor)`` -- nodes stay alive but serve their
  ingress queues at ``factor`` of their nominal service rate (needs the
  finite service model, like ``storm``);
* ``asym_partition(t0, t1, src, dst)`` -- one-way link cuts: packets
  from ``src`` addresses to ``dst`` addresses are dropped while the
  reverse direction still flows;
* ``duplicate(t0, t1, rate)`` -- each delivered packet is delivered a
  second time with probability ``rate``;
* ``reorder(t0, t1, window_ms)`` -- each packet picks up an adversarial
  extra delay uniform in ``[0, window_ms)``, reordering streams;
* ``flap(t0, t1, addr, period)`` -- crash/rejoin oscillation: the node
  crashes at ``t0`` and toggles every ``period`` ms, guaranteed alive
  again by ``t1``.

Every action is applied through one dispatch point, so a schedule can
be rendered (``describe()``), serialized back to the declarative DSL
(``to_spec()``) and replayed bit-identically.  Build-time validation
(:class:`FaultScheduleError`) rejects schedules that would act
silently-wrong at runtime: rejoining a node that was never crashed,
crashing a corpse, flapping through another fault window of the same
node, or overlapping partition/loss/slow/duplicate/reorder windows
without an intervening heal (the network applies one at a time, so the
first heal would clobber the second window).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import HyperSubSystem

#: Action kinds understood by :meth:`FaultSchedule._apply`.
_KINDS = (
    "crash",
    "rejoin",
    "partition",
    "heal_partition",
    "loss",
    "clear_loss",
    "latency",
    "clear_latency",
    "storm",
    "slow",
    "clear_slow",
    "asym_partition",
    "heal_asym_partition",
    "duplicate",
    "clear_duplicate",
    "reorder",
    "clear_reorder",
    "flap",
)

#: Spec keys of the declarative DSL, one per *builder* (window actions
#: pair an apply and a heal member of :data:`_KINDS`).
SPEC_KEYS = (
    "crash",
    "rejoin",
    "partition",
    "loss",
    "latency",
    "storm",
    "slow",
    "asym_partition",
    "duplicate",
    "reorder",
    "flap",
)


class FaultScheduleError(ValueError):
    """A schedule that would act silently-wrong at runtime, rejected at
    build time: bad parameters, impossible targets (rejoin of a node
    that was never crashed), or overlapping single-active windows."""


@dataclass(frozen=True)
class FaultAction:
    """One primitive scheduled at an absolute simulated time (ms)."""

    time_ms: float
    kind: str
    #: node addresses (crash / rejoin / slow / flap; src side of asym)
    addrs: tuple = ()
    #: addr -> group map (partition)
    groups: Optional[tuple] = None
    #: loss / duplicate probability
    rate: float = 0.0
    #: latency multiplier (latency) / flood rate in msgs/ms (storm) /
    #: service-rate fraction (slow) / reorder window ms (reorder) /
    #: flap period ms (flap)
    factor: float = 1.0
    #: rng seed for the loss/duplicate/reorder process; doubles as the
    #: window token for asym_partition (concurrent cuts are legal)
    seed: int = 0
    #: window end for self-terminating actions (storm, flap)
    until_ms: Optional[float] = None
    #: dst side of an asym_partition cut
    dst_addrs: tuple = ()

    def __post_init__(self) -> None:
        """Validate at build time -- a bad rate must fail when the
        schedule is constructed, not hours into a run when it fires."""
        if self.kind not in _KINDS:
            raise FaultScheduleError(f"unknown fault kind {self.kind!r}")
        if self.time_ms < 0:
            raise FaultScheduleError("fault times must be non-negative")
        if self.kind == "loss" and not 0.0 <= self.rate < 1.0:
            raise FaultScheduleError(
                f"loss rate must be in [0, 1), got {self.rate}"
            )
        if self.kind == "latency" and self.factor <= 0:
            raise FaultScheduleError("latency factor must be positive")
        if self.kind == "storm":
            if self.factor <= 0:
                raise FaultScheduleError("storm rate must be positive (msgs/ms)")
            if len(self.addrs) != 1:
                raise FaultScheduleError("storm targets exactly one address")
            if self.until_ms is None or self.until_ms <= self.time_ms:
                raise FaultScheduleError("storm window must have positive length")
        if self.kind == "slow":
            if not 0.0 < self.factor < 1.0:
                raise FaultScheduleError(
                    f"slow factor must be in (0, 1), got {self.factor}"
                )
            if not self.addrs:
                raise FaultScheduleError("slow needs at least one address")
        if self.kind == "asym_partition":
            if not self.addrs or not self.dst_addrs:
                raise FaultScheduleError(
                    "asym_partition needs non-empty src and dst address sets"
                )
            if set(self.addrs) & set(self.dst_addrs):
                raise FaultScheduleError(
                    "asym_partition src and dst sets must be disjoint"
                )
        if self.kind == "duplicate" and not 0.0 < self.rate <= 1.0:
            raise FaultScheduleError(
                f"duplicate rate must be in (0, 1], got {self.rate}"
            )
        if self.kind == "reorder" and self.factor <= 0:
            raise FaultScheduleError("reorder window must be positive (ms)")
        if self.kind == "flap":
            if len(self.addrs) != 1:
                raise FaultScheduleError("flap targets exactly one address")
            if self.factor <= 0:
                raise FaultScheduleError("flap period must be positive (ms)")
            if self.until_ms is None or self.until_ms < self.time_ms + self.factor:
                raise FaultScheduleError(
                    "flap window must fit at least one crash+rejoin cycle "
                    "(until >= from + period)"
                )

    def describe(self) -> str:
        if self.kind in ("crash", "rejoin"):
            return f"t={self.time_ms:.0f}ms {self.kind} {list(self.addrs)}"
        if self.kind == "partition":
            return f"t={self.time_ms:.0f}ms partition {dict(self.groups)}"
        if self.kind == "loss":
            return f"t={self.time_ms:.0f}ms loss rate={self.rate:.3f}"
        if self.kind == "latency":
            return f"t={self.time_ms:.0f}ms latency x{self.factor:g}"
        if self.kind == "storm":
            return (
                f"t={self.time_ms:.0f}ms storm addr={self.addrs[0]} "
                f"rate={self.factor:g}/ms until={self.until_ms:.0f}ms"
            )
        if self.kind == "slow":
            return (
                f"t={self.time_ms:.0f}ms slow {list(self.addrs)} "
                f"x{self.factor:g}"
            )
        if self.kind == "clear_slow":
            return f"t={self.time_ms:.0f}ms clear_slow {list(self.addrs)}"
        if self.kind == "asym_partition":
            return (
                f"t={self.time_ms:.0f}ms asym_partition "
                f"{list(self.addrs)} -/-> {list(self.dst_addrs)}"
            )
        if self.kind == "duplicate":
            return f"t={self.time_ms:.0f}ms duplicate rate={self.rate:.3f}"
        if self.kind == "reorder":
            return f"t={self.time_ms:.0f}ms reorder window={self.factor:g}ms"
        if self.kind == "flap":
            return (
                f"t={self.time_ms:.0f}ms flap addr={self.addrs[0]} "
                f"period={self.factor:g}ms until={self.until_ms:.0f}ms"
            )
        return f"t={self.time_ms:.0f}ms {self.kind}"


class FaultSchedule:
    """An ordered, replayable list of fault-injection actions.

    Builder methods return ``self`` so schedules read as timelines::

        FaultSchedule().crash(5_000, victims).rejoin(30_000, victims)

    Ties on time fire in insertion order (the simulator's tie-break),
    so a schedule is fully deterministic.
    """

    def __init__(self) -> None:
        self.actions: List[FaultAction] = []
        self._installed = False
        #: canonical declarative entries, one per builder call, so the
        #: schedule round-trips through the spec DSL (``to_spec``).
        self._spec: List[Dict] = []
        #: single-active window bookkeeping: kind -> [(t0, t1|None)].
        self._windows: Dict[str, List[Tuple[float, Optional[float]]]] = {}
        #: per-addr life events for target validation:
        #: addr -> [(time, "crash"|"rejoin")], plus flap windows
        #: addr -> [(t0, t1)].
        self._life: Dict[int, List[Tuple[float, str]]] = {}
        self._flaps: Dict[int, List[Tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # Build-time validation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _overlaps(
        windows: Iterable[Tuple[float, Optional[float]]], t0: float, t1: Optional[float]
    ) -> bool:
        for w0, w1 in windows:
            if (w1 is None or t0 < w1) and (t1 is None or w0 < t1):
                return True
        return False

    def _check_window(self, kind: str, t0: float, t1: Optional[float]) -> None:
        """Reject overlapping windows of a single-active fault kind: the
        network applies one at a time, so the first heal would clobber
        the second window and the schedule would lie about itself."""
        existing = self._windows.setdefault(kind, [])
        if self._overlaps(existing, t0, t1):
            raise FaultScheduleError(
                f"overlapping {kind} windows without an intervening heal: "
                f"[{t0:g}, {'inf' if t1 is None else format(t1, 'g')}) vs "
                f"existing {existing}"
            )
        existing.append((t0, t1))

    def _alive_at(self, addr: int, t: float) -> bool:
        """Scheduled life state of ``addr`` just before time ``t``
        (events strictly earlier; ties are pathological and rejected)."""
        state = True
        for when, what in sorted(self._life.get(addr, ())):
            if when >= t:
                break
            state = what == "rejoin"
        return state

    def _in_flap(self, addr: int, t0: float, t1: Optional[float]) -> bool:
        return self._overlaps(self._flaps.get(addr, ()), t0, t1)

    def _note_life(self, addr: int, t: float, what: str) -> None:
        self._life.setdefault(addr, []).append((t, what))

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def _add(self, action: FaultAction) -> "FaultSchedule":
        # Per-action validation lives in FaultAction.__post_init__ so
        # directly constructed actions are checked too.
        self.actions.append(action)
        return self

    def crash(self, at_ms: float, addrs: Iterable[int]) -> "FaultSchedule":
        """Crash-stop ``addrs`` at ``at_ms`` (volatile state is lost)."""
        addrs = tuple(int(a) for a in addrs)
        for a in addrs:
            if not self._alive_at(a, at_ms):
                raise FaultScheduleError(
                    f"crash of node {a} at t={at_ms:g}ms: already crashed "
                    "(no intervening rejoin)"
                )
            if self._in_flap(a, at_ms, at_ms + 1e-9):
                raise FaultScheduleError(
                    f"crash of node {a} at t={at_ms:g}ms falls inside a "
                    "flap window of the same node"
                )
        for a in addrs:
            self._note_life(a, at_ms, "crash")
        self._spec.append({"at": float(at_ms), "crash": list(addrs)})
        return self._add(FaultAction(at_ms, "crash", addrs=addrs))

    def rejoin(self, at_ms: float, addrs: Iterable[int]) -> "FaultSchedule":
        """Previously crashed ``addrs`` rejoin the overlay at ``at_ms``."""
        addrs = tuple(int(a) for a in addrs)
        for a in addrs:
            if self._alive_at(a, at_ms):
                raise FaultScheduleError(
                    f"rejoin of node {a} at t={at_ms:g}ms: never crashed "
                    "before that time (or already rejoined)"
                )
            if self._in_flap(a, at_ms, at_ms + 1e-9):
                raise FaultScheduleError(
                    f"rejoin of node {a} at t={at_ms:g}ms falls inside a "
                    "flap window of the same node"
                )
        for a in addrs:
            self._note_life(a, at_ms, "rejoin")
        self._spec.append({"at": float(at_ms), "rejoin": list(addrs)})
        return self._add(FaultAction(at_ms, "rejoin", addrs=addrs))

    def partition(
        self, from_ms: float, until_ms: float, groups: Dict[int, int]
    ) -> "FaultSchedule":
        """Split the network into ``groups`` during [from_ms, until_ms)."""
        if until_ms <= from_ms:
            raise FaultScheduleError("partition window must have positive length")
        self._check_window("partition", from_ms, until_ms)
        self._spec.append(
            {
                "from": float(from_ms),
                "to": float(until_ms),
                "partition": {int(k): int(v) for k, v in groups.items()},
            }
        )
        self._add(
            FaultAction(from_ms, "partition", groups=tuple(sorted(groups.items())))
        )
        return self._add(FaultAction(until_ms, "heal_partition"))

    def loss(
        self,
        from_ms: float,
        rate: float,
        until_ms: Optional[float] = None,
        seed: int = 0,
    ) -> "FaultSchedule":
        """Drop packets with probability ``rate`` from ``from_ms`` on;
        ``until_ms`` (exclusive) closes the window, ``None`` leaves it
        open for the rest of the run."""
        if until_ms is not None and until_ms <= from_ms:
            raise FaultScheduleError("loss window must have positive length")
        self._check_window("loss", from_ms, until_ms)
        entry: Dict = {"from": float(from_ms), "loss": float(rate)}
        if until_ms is not None:
            entry["to"] = float(until_ms)
        if seed:
            entry["seed"] = int(seed)
        self._spec.append(entry)
        self._add(FaultAction(from_ms, "loss", rate=rate, seed=seed))
        if until_ms is not None:
            self._add(FaultAction(until_ms, "clear_loss"))
        return self

    def latency_spike(
        self, from_ms: float, until_ms: float, factor: float
    ) -> "FaultSchedule":
        """Multiply link latencies by ``factor`` during the window."""
        if until_ms <= from_ms:
            raise FaultScheduleError("latency window must have positive length")
        if factor <= 0:
            raise FaultScheduleError("latency factor must be positive")
        self._check_window("latency", from_ms, until_ms)
        self._spec.append(
            {"from": float(from_ms), "to": float(until_ms), "latency": float(factor)}
        )
        self._add(FaultAction(from_ms, "latency", factor=factor))
        return self._add(FaultAction(until_ms, "clear_latency"))

    def storm(
        self, from_ms: float, until_ms: float, addr: int, rate: float
    ) -> "FaultSchedule":
        """Flood ``addr`` with ``rate`` synthetic packets per ms during
        [from_ms, until_ms).  The packets are pure load (pub/sub no-ops):
        under the finite service model they saturate the victim's ingress
        queue exactly like an event storm at a hot rendezvous zone; with
        infinite capacity (the default) they are handled instantly and
        the storm is invisible -- see docs/FAULTS.md."""
        self._spec.append(
            {
                "from": float(from_ms),
                "to": float(until_ms),
                "storm": {"addr": int(addr), "rate": float(rate)},
            }
        )
        return self._add(
            FaultAction(
                from_ms, "storm", addrs=(int(addr),), factor=rate, until_ms=until_ms
            )
        )

    def slow(
        self,
        from_ms: float,
        until_ms: float,
        addrs: Iterable[int],
        factor: float,
    ) -> "FaultSchedule":
        """Gray failure: ``addrs`` stay alive but serve at ``factor`` of
        their nominal service rate during [from_ms, until_ms).  Needs
        the finite service model (like ``storm``) to be observable."""
        if until_ms <= from_ms:
            raise FaultScheduleError("slow window must have positive length")
        addrs = tuple(int(a) for a in addrs)
        for a in addrs:
            self._check_window(f"slow[{a}]", from_ms, until_ms)
        self._spec.append(
            {
                "from": float(from_ms),
                "to": float(until_ms),
                "slow": {"addrs": list(addrs), "factor": float(factor)},
            }
        )
        self._add(FaultAction(from_ms, "slow", addrs=addrs, factor=factor))
        return self._add(FaultAction(until_ms, "clear_slow", addrs=addrs))

    def asym_partition(
        self,
        from_ms: float,
        until_ms: float,
        src_addrs: Iterable[int],
        dst_addrs: Iterable[int],
    ) -> "FaultSchedule":
        """Gray failure: one-way link cut during [from_ms, until_ms) --
        packets from ``src_addrs`` to ``dst_addrs`` are dropped while
        the reverse direction still flows.  Concurrent cuts are legal
        (each window owns a token), unlike symmetric partitions."""
        if until_ms <= from_ms:
            raise FaultScheduleError(
                "asym_partition window must have positive length"
            )
        src = tuple(int(a) for a in src_addrs)
        dst = tuple(int(a) for a in dst_addrs)
        token = len(self._windows.setdefault("asym_partition", []))
        self._windows["asym_partition"].append((from_ms, until_ms))
        self._spec.append(
            {
                "from": float(from_ms),
                "to": float(until_ms),
                "asym_partition": {"src": list(src), "dst": list(dst)},
            }
        )
        self._add(
            FaultAction(
                from_ms, "asym_partition", addrs=src, dst_addrs=dst, seed=token
            )
        )
        return self._add(
            FaultAction(until_ms, "heal_asym_partition", seed=token)
        )

    def duplicate(
        self, from_ms: float, until_ms: float, rate: float, seed: int = 0
    ) -> "FaultSchedule":
        """Gray failure: during [from_ms, until_ms) every delivered
        packet is delivered a *second* time with probability ``rate``
        (deterministic per seed).  Exactly-once layers must absorb it."""
        if until_ms <= from_ms:
            raise FaultScheduleError("duplicate window must have positive length")
        self._check_window("duplicate", from_ms, until_ms)
        entry: Dict = {
            "from": float(from_ms),
            "to": float(until_ms),
            "duplicate": float(rate),
        }
        if seed:
            entry["seed"] = int(seed)
        self._spec.append(entry)
        self._add(FaultAction(from_ms, "duplicate", rate=rate, seed=seed))
        return self._add(FaultAction(until_ms, "clear_duplicate"))

    def reorder(
        self, from_ms: float, until_ms: float, window_ms: float, seed: int = 0
    ) -> "FaultSchedule":
        """Gray failure: during [from_ms, until_ms) every packet picks
        up an adversarial extra delay uniform in [0, ``window_ms``),
        reordering otherwise-FIFO streams (deterministic per seed)."""
        if until_ms <= from_ms:
            raise FaultScheduleError("reorder window must have positive length")
        self._check_window("reorder", from_ms, until_ms)
        entry: Dict = {
            "from": float(from_ms),
            "to": float(until_ms),
            "reorder": float(window_ms),
        }
        if seed:
            entry["seed"] = int(seed)
        self._spec.append(entry)
        self._add(FaultAction(from_ms, "reorder", factor=window_ms, seed=seed))
        return self._add(FaultAction(until_ms, "clear_reorder"))

    def flap(
        self, from_ms: float, until_ms: float, addr: int, period_ms: float
    ) -> "FaultSchedule":
        """Gray failure: crash/rejoin oscillation.  ``addr`` crashes at
        ``from_ms`` and toggles every ``period_ms``; whatever the phase,
        it is guaranteed alive again by ``until_ms`` (the heal-by-end
        contract every window primitive keeps)."""
        addr = int(addr)
        if not self._alive_at(addr, from_ms):
            raise FaultScheduleError(
                f"flap of node {addr} at t={from_ms:g}ms: node is crashed "
                "there (rejoin it first)"
            )
        if self._in_flap(addr, from_ms, until_ms):
            raise FaultScheduleError(
                f"flap of node {addr}: overlapping flap windows"
            )
        for when, _what in self._life.get(addr, ()):
            if from_ms <= when < (until_ms if until_ms is not None else when + 1):
                raise FaultScheduleError(
                    f"flap window of node {addr} overlaps a scheduled "
                    f"crash/rejoin of the same node at t={when:g}ms"
                )
        # Validation of period/window happens in FaultAction.__post_init__.
        action = FaultAction(
            from_ms, "flap", addrs=(addr,), factor=period_ms, until_ms=until_ms
        )
        self._flaps.setdefault(addr, []).append((from_ms, until_ms))
        self._spec.append(
            {
                "from": float(from_ms),
                "to": float(until_ms),
                "flap": {"addr": addr, "period": float(period_ms)},
            }
        )
        return self._add(action)

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def random_churn(
        cls,
        num_nodes: int,
        fail_fraction: float,
        crash_window: tuple,
        rejoin_window: Optional[tuple] = None,
        seed: int = 0,
        protect: Iterable[int] = (),
    ) -> tuple:
        """Sample a deterministic crash(-and-rejoin) schedule.

        ``fail_fraction`` of the ``num_nodes`` addresses (excluding
        ``protect``) crash at times uniform in ``crash_window``; when
        ``rejoin_window`` is given each victim rejoins at a time uniform
        in it.  Returns ``(schedule, victims)`` so experiments can build
        their delivery oracles from the same draw.
        """
        rng = np.random.default_rng(seed)
        protected = set(protect)
        candidates = [a for a in range(num_nodes) if a not in protected]
        n_fail = int(fail_fraction * num_nodes)
        if n_fail > len(candidates):
            raise ValueError("not enough unprotected nodes to fail")
        victims = sorted(
            int(v) for v in rng.choice(candidates, size=n_fail, replace=False)
        )
        sched = cls()
        for v in victims:
            sched.crash(float(rng.uniform(*crash_window)), [v])
        if rejoin_window is not None:
            for v in victims:
                sched.rejoin(float(rng.uniform(*rejoin_window)), [v])
        return sched, victims

    @classmethod
    def from_spec(cls, spec: Sequence[Dict]) -> "FaultSchedule":
        """Build a schedule from the declarative DSL (docs/SIMULATOR.md).

        Each entry is a dict with either ``at`` (instant actions) or
        ``from``/``to`` (window actions) plus exactly one fault key::

            [{"at": 5000, "crash": [3, 7]},
             {"at": 30000, "rejoin": [3, 7]},
             {"from": 1000, "to": 4000, "loss": 0.1, "seed": 9},
             {"from": 2000, "to": 6000, "partition": {0: 0, 1: 1}},
             {"from": 8000, "to": 9000, "latency": 3.0},
             {"from": 2000, "to": 12000, "storm": {"addr": 4, "rate": 5.0}},
             {"from": 2000, "to": 9000, "slow": {"addrs": [1, 2],
                                                 "factor": 0.25}},
             {"from": 2000, "to": 9000, "asym_partition": {"src": [0],
                                                           "dst": [3]}},
             {"from": 2000, "to": 9000, "duplicate": 0.2},
             {"from": 2000, "to": 9000, "reorder": 150.0},
             {"from": 2000, "to": 12000, "flap": {"addr": 5,
                                                  "period": 2500.0}}]

        The inverse is :meth:`to_spec`; the two compose to the identity
        on canonical specs (the round-trip contract the chaos shrinker
        and the failing-schedule replay files rely on).
        """
        sched = cls()
        for entry in spec:
            entry = dict(entry)
            at = entry.pop("at", None)
            t0 = entry.pop("from", None)
            t1 = entry.pop("to", None)
            seed = entry.pop("seed", 0)
            if len(entry) != 1:
                raise FaultScheduleError(
                    f"spec entry needs exactly one fault key: {entry}"
                )
            key, value = next(iter(entry.items()))
            if key in ("crash", "rejoin"):
                if at is None:
                    raise FaultScheduleError(f"{key} needs 'at'")
                getattr(sched, key)(at, value)
                continue
            if key == "loss":
                if t0 is None:
                    raise FaultScheduleError("loss needs 'from'")
                sched.loss(t0, value, until_ms=t1, seed=seed)
                continue
            # Every remaining kind is a closed window.
            if t0 is None or t1 is None:
                raise FaultScheduleError(f"{key} needs 'from' and 'to'")
            if key == "partition":
                sched.partition(t0, t1, {int(k): v for k, v in value.items()})
            elif key == "latency":
                sched.latency_spike(t0, t1, value)
            elif key == "storm":
                sched.storm(t0, t1, int(value["addr"]), float(value["rate"]))
            elif key == "slow":
                sched.slow(
                    t0, t1, [int(a) for a in value["addrs"]],
                    float(value["factor"]),
                )
            elif key == "asym_partition":
                sched.asym_partition(
                    t0, t1,
                    [int(a) for a in value["src"]],
                    [int(a) for a in value["dst"]],
                )
            elif key == "duplicate":
                sched.duplicate(t0, t1, float(value), seed=seed)
            elif key == "reorder":
                sched.reorder(t0, t1, float(value), seed=seed)
            elif key == "flap":
                sched.flap(t0, t1, int(value["addr"]), float(value["period"]))
            else:
                raise FaultScheduleError(f"unknown fault key {key!r}")
        return sched

    def to_spec(self) -> List[Dict]:
        """Serialize back to the declarative DSL.

        ``FaultSchedule.from_spec(s.to_spec())`` reconstructs an
        equivalent schedule for every builder (old and new kinds alike),
        and ``from_spec(spec).to_spec() == spec`` for canonical specs --
        the property the chaos campaign's failing-schedule JSON files
        and the shrinker's candidate serialization depend on.
        """
        return copy.deepcopy(self._spec)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def install(self, system: "HyperSubSystem") -> None:
        """Arm every action on the system's simulator (once per schedule)."""
        if self._installed:
            raise RuntimeError("schedule already installed")
        self._installed = True
        for action in sorted(self.actions, key=lambda a: a.time_ms):
            system.sim.schedule_at(action.time_ms, self._apply, system, action)

    @staticmethod
    def _crash_one(system: "HyperSubSystem", addr: int) -> None:
        system.nodes[addr].fail()

    @staticmethod
    def _rejoin_one(system: "HyperSubSystem", addr: int) -> None:
        system.rejoin_node(addr)

    @classmethod
    def _apply(cls, system: "HyperSubSystem", action: FaultAction) -> None:
        net = system.network
        # getattr: fault tests drive _apply against stub systems.
        tel = getattr(system, "telemetry", None)
        if tel is not None:
            tel.registry.counter(f"faults.{action.kind}").inc(
                len(action.addrs) or 1
            )
            if tel.tracing:
                tel.tracer.span(
                    "fault",
                    t=system.sim.now,
                    fault=action.kind,
                    addrs=list(action.addrs),
                )
        if action.kind == "crash":
            for addr in action.addrs:
                system.nodes[addr].fail()
        elif action.kind == "rejoin":
            for addr in action.addrs:
                system.rejoin_node(addr)
        elif action.kind == "partition":
            net.set_partition(dict(action.groups))
        elif action.kind == "heal_partition":
            net.clear_partition()
        elif action.kind == "loss":
            net.set_loss_rate(action.rate, seed=action.seed)
        elif action.kind == "clear_loss":
            net.clear_loss()
        elif action.kind == "latency":
            net.set_latency_factor(action.factor)
        elif action.kind == "clear_latency":
            net.clear_latency_factor()
        elif action.kind == "storm":
            net.start_storm(action.addrs[0], action.factor, action.until_ms)
        elif action.kind == "slow":
            net.set_slow(action.addrs, action.factor)
        elif action.kind == "clear_slow":
            net.clear_slow(action.addrs)
        elif action.kind == "asym_partition":
            net.add_asym_cut(action.seed, action.addrs, action.dst_addrs)
        elif action.kind == "heal_asym_partition":
            net.remove_asym_cut(action.seed)
        elif action.kind == "duplicate":
            net.set_duplicate(action.rate, seed=action.seed)
        elif action.kind == "clear_duplicate":
            net.clear_duplicate()
        elif action.kind == "reorder":
            net.set_reorder(action.factor, seed=action.seed)
        elif action.kind == "clear_reorder":
            net.clear_reorder()
        elif action.kind == "flap":  # pragma: no branch
            cls._apply_flap(system, action)

    @classmethod
    def _apply_flap(cls, system: "HyperSubSystem", action: FaultAction) -> None:
        """Unroll one flap window into its crash/rejoin oscillation.

        The node crashes *now* (the action's fire time), toggles every
        ``period`` ms, and -- whatever phase the window length lands on
        -- is rejoined no later than ``until_ms``: a flap always heals
        by the end of its window.
        """
        addr = action.addrs[0]
        period = action.factor
        t1 = action.until_ms
        cls._crash_one(system, addr)
        down = True
        t = action.time_ms + period
        while t < t1:
            fn = cls._rejoin_one if down else cls._crash_one
            system.sim.schedule_at(t, fn, system, addr)
            down = not down
            t += period
        if down:
            system.sim.schedule_at(t1, cls._rejoin_one, system, addr)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable timeline (sorted by firing time)."""
        lines = [a.describe() for a in sorted(self.actions, key=lambda a: a.time_ms)]
        return "\n".join(lines) if lines else "(empty schedule)"

    def __len__(self) -> int:
        return len(self.actions)
