"""Deterministic fault-schedule injection.

The seed repository injected failures ad hoc: experiments called
``Network.set_loss_rate`` / ``set_partition`` at fixed wall points and
scheduled ``node.fail()`` by hand, which made fault timelines
impossible to reuse, compose or replay.  :class:`FaultSchedule` fixes
that: a schedule is an ordered list of primitive actions pinned to
simulated time, built either through the fluent builder methods, from
the declarative spec DSL (:meth:`FaultSchedule.from_spec`), or sampled
deterministically from a seed (:meth:`FaultSchedule.random_churn`).
``install(system)`` arms every action on the system's simulator clock;
nothing happens until the clock reaches it.

Primitives:

* ``crash(t, addrs)`` -- crash-stop nodes (volatile surrogate state lost);
* ``rejoin(t, addrs)`` -- crashed nodes re-enter through Chord's join
  protocol and resync their arcs (see ``HyperSubSystem.rejoin_node``);
* ``partition(t0, t1, groups)`` -- a partition window that heals itself;
* ``loss(t0, rate, until=t1)`` -- an i.i.d. message-loss window;
* ``latency_spike(t0, t1, factor)`` -- links slow down by ``factor``;
* ``storm(t0, t1, addr, rate)`` -- flood ``addr`` with ``rate`` synthetic
  packets per ms (overload injection; needs the finite service model to
  have any observable effect -- see docs/FAULTS.md).

Every action is applied through one dispatch point, so a schedule can
be rendered (``describe()``) and replayed bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import HyperSubSystem

#: Action kinds understood by :meth:`FaultSchedule._apply`.
_KINDS = (
    "crash",
    "rejoin",
    "partition",
    "heal_partition",
    "loss",
    "clear_loss",
    "latency",
    "clear_latency",
    "storm",
)


@dataclass(frozen=True)
class FaultAction:
    """One primitive scheduled at an absolute simulated time (ms)."""

    time_ms: float
    kind: str
    #: node addresses (crash / rejoin)
    addrs: tuple = ()
    #: addr -> group map (partition)
    groups: Optional[tuple] = None
    #: loss probability (loss)
    rate: float = 0.0
    #: latency multiplier (latency) / flood rate in msgs/ms (storm)
    factor: float = 1.0
    #: rng seed for the loss process
    seed: int = 0
    #: window end for self-terminating actions (storm)
    until_ms: Optional[float] = None

    def __post_init__(self) -> None:
        """Validate at build time -- a bad rate must fail when the
        schedule is constructed, not hours into a run when it fires."""
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time_ms < 0:
            raise ValueError("fault times must be non-negative")
        if self.kind == "loss" and not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.rate}")
        if self.kind == "latency" and self.factor <= 0:
            raise ValueError("latency factor must be positive")
        if self.kind == "storm":
            if self.factor <= 0:
                raise ValueError("storm rate must be positive (msgs/ms)")
            if len(self.addrs) != 1:
                raise ValueError("storm targets exactly one address")
            if self.until_ms is None or self.until_ms <= self.time_ms:
                raise ValueError("storm window must have positive length")

    def describe(self) -> str:
        if self.kind in ("crash", "rejoin"):
            return f"t={self.time_ms:.0f}ms {self.kind} {list(self.addrs)}"
        if self.kind == "partition":
            return f"t={self.time_ms:.0f}ms partition {dict(self.groups)}"
        if self.kind == "loss":
            return f"t={self.time_ms:.0f}ms loss rate={self.rate:.3f}"
        if self.kind == "latency":
            return f"t={self.time_ms:.0f}ms latency x{self.factor:g}"
        if self.kind == "storm":
            return (
                f"t={self.time_ms:.0f}ms storm addr={self.addrs[0]} "
                f"rate={self.factor:g}/ms until={self.until_ms:.0f}ms"
            )
        return f"t={self.time_ms:.0f}ms {self.kind}"


class FaultSchedule:
    """An ordered, replayable list of fault-injection actions.

    Builder methods return ``self`` so schedules read as timelines::

        FaultSchedule().crash(5_000, victims).rejoin(30_000, victims)

    Ties on time fire in insertion order (the simulator's tie-break),
    so a schedule is fully deterministic.
    """

    def __init__(self) -> None:
        self.actions: List[FaultAction] = []
        self._installed = False

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def _add(self, action: FaultAction) -> "FaultSchedule":
        # Per-action validation lives in FaultAction.__post_init__ so
        # directly constructed actions are checked too.
        self.actions.append(action)
        return self

    def crash(self, at_ms: float, addrs: Iterable[int]) -> "FaultSchedule":
        """Crash-stop ``addrs`` at ``at_ms`` (volatile state is lost)."""
        return self._add(FaultAction(at_ms, "crash", addrs=tuple(addrs)))

    def rejoin(self, at_ms: float, addrs: Iterable[int]) -> "FaultSchedule":
        """Previously crashed ``addrs`` rejoin the overlay at ``at_ms``."""
        return self._add(FaultAction(at_ms, "rejoin", addrs=tuple(addrs)))

    def partition(
        self, from_ms: float, until_ms: float, groups: Dict[int, int]
    ) -> "FaultSchedule":
        """Split the network into ``groups`` during [from_ms, until_ms)."""
        if until_ms <= from_ms:
            raise ValueError("partition window must have positive length")
        self._add(
            FaultAction(from_ms, "partition", groups=tuple(sorted(groups.items())))
        )
        return self._add(FaultAction(until_ms, "heal_partition"))

    def loss(
        self,
        from_ms: float,
        rate: float,
        until_ms: Optional[float] = None,
        seed: int = 0,
    ) -> "FaultSchedule":
        """Drop packets with probability ``rate`` from ``from_ms`` on;
        ``until_ms`` (exclusive) closes the window, ``None`` leaves it
        open for the rest of the run."""
        self._add(FaultAction(from_ms, "loss", rate=rate, seed=seed))
        if until_ms is not None:
            if until_ms <= from_ms:
                raise ValueError("loss window must have positive length")
            self._add(FaultAction(until_ms, "clear_loss"))
        return self

    def latency_spike(
        self, from_ms: float, until_ms: float, factor: float
    ) -> "FaultSchedule":
        """Multiply link latencies by ``factor`` during the window."""
        if until_ms <= from_ms:
            raise ValueError("latency window must have positive length")
        if factor <= 0:
            raise ValueError("latency factor must be positive")
        self._add(FaultAction(from_ms, "latency", factor=factor))
        return self._add(FaultAction(until_ms, "clear_latency"))

    def storm(
        self, from_ms: float, until_ms: float, addr: int, rate: float
    ) -> "FaultSchedule":
        """Flood ``addr`` with ``rate`` synthetic packets per ms during
        [from_ms, until_ms).  The packets are pure load (pub/sub no-ops):
        under the finite service model they saturate the victim's ingress
        queue exactly like an event storm at a hot rendezvous zone; with
        infinite capacity (the default) they are handled instantly and
        the storm is invisible -- see docs/FAULTS.md."""
        return self._add(
            FaultAction(
                from_ms, "storm", addrs=(addr,), factor=rate, until_ms=until_ms
            )
        )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def random_churn(
        cls,
        num_nodes: int,
        fail_fraction: float,
        crash_window: tuple,
        rejoin_window: Optional[tuple] = None,
        seed: int = 0,
        protect: Iterable[int] = (),
    ) -> tuple:
        """Sample a deterministic crash(-and-rejoin) schedule.

        ``fail_fraction`` of the ``num_nodes`` addresses (excluding
        ``protect``) crash at times uniform in ``crash_window``; when
        ``rejoin_window`` is given each victim rejoins at a time uniform
        in it.  Returns ``(schedule, victims)`` so experiments can build
        their delivery oracles from the same draw.
        """
        rng = np.random.default_rng(seed)
        protected = set(protect)
        candidates = [a for a in range(num_nodes) if a not in protected]
        n_fail = int(fail_fraction * num_nodes)
        if n_fail > len(candidates):
            raise ValueError("not enough unprotected nodes to fail")
        victims = sorted(
            int(v) for v in rng.choice(candidates, size=n_fail, replace=False)
        )
        sched = cls()
        for v in victims:
            sched.crash(float(rng.uniform(*crash_window)), [v])
        if rejoin_window is not None:
            for v in victims:
                sched.rejoin(float(rng.uniform(*rejoin_window)), [v])
        return sched, victims

    @classmethod
    def from_spec(cls, spec: Sequence[Dict]) -> "FaultSchedule":
        """Build a schedule from the declarative DSL (docs/SIMULATOR.md).

        Each entry is a dict with either ``at`` (instant actions) or
        ``from``/``to`` (window actions) plus exactly one fault key::

            [{"at": 5000, "crash": [3, 7]},
             {"at": 30000, "rejoin": [3, 7]},
             {"from": 1000, "to": 4000, "loss": 0.1, "seed": 9},
             {"from": 2000, "to": 6000, "partition": {0: 0, 1: 1}},
             {"from": 8000, "to": 9000, "latency": 3.0},
             {"from": 2000, "to": 12000, "storm": {"addr": 4, "rate": 5.0}}]
        """
        sched = cls()
        for entry in spec:
            entry = dict(entry)
            at = entry.pop("at", None)
            t0 = entry.pop("from", None)
            t1 = entry.pop("to", None)
            seed = entry.pop("seed", 0)
            if len(entry) != 1:
                raise ValueError(f"spec entry needs exactly one fault key: {entry}")
            key, value = next(iter(entry.items()))
            if key in ("crash", "rejoin"):
                if at is None:
                    raise ValueError(f"{key} needs 'at'")
                getattr(sched, key)(at, value)
            elif key == "loss":
                if t0 is None:
                    raise ValueError("loss needs 'from'")
                sched.loss(t0, value, until_ms=t1, seed=seed)
            elif key == "partition":
                if t0 is None or t1 is None:
                    raise ValueError("partition needs 'from' and 'to'")
                sched.partition(t0, t1, {int(k): v for k, v in value.items()})
            elif key == "latency":
                if t0 is None or t1 is None:
                    raise ValueError("latency needs 'from' and 'to'")
                sched.latency_spike(t0, t1, value)
            elif key == "storm":
                if t0 is None or t1 is None:
                    raise ValueError("storm needs 'from' and 'to'")
                sched.storm(t0, t1, int(value["addr"]), float(value["rate"]))
            else:
                raise ValueError(f"unknown fault key {key!r}")
        return sched

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def install(self, system: "HyperSubSystem") -> None:
        """Arm every action on the system's simulator (once per schedule)."""
        if self._installed:
            raise RuntimeError("schedule already installed")
        self._installed = True
        for action in sorted(self.actions, key=lambda a: a.time_ms):
            system.sim.schedule_at(action.time_ms, self._apply, system, action)

    @staticmethod
    def _apply(system: "HyperSubSystem", action: FaultAction) -> None:
        net = system.network
        # getattr: fault tests drive _apply against stub systems.
        tel = getattr(system, "telemetry", None)
        if tel is not None:
            tel.registry.counter(f"faults.{action.kind}").inc(
                len(action.addrs) or 1
            )
            if tel.tracing:
                tel.tracer.span(
                    "fault",
                    t=system.sim.now,
                    fault=action.kind,
                    addrs=list(action.addrs),
                )
        if action.kind == "crash":
            for addr in action.addrs:
                system.nodes[addr].fail()
        elif action.kind == "rejoin":
            for addr in action.addrs:
                system.rejoin_node(addr)
        elif action.kind == "partition":
            net.set_partition(dict(action.groups))
        elif action.kind == "heal_partition":
            net.clear_partition()
        elif action.kind == "loss":
            net.set_loss_rate(action.rate, seed=action.seed)
        elif action.kind == "clear_loss":
            net.clear_loss()
        elif action.kind == "latency":
            net.set_latency_factor(action.factor)
        elif action.kind == "clear_latency":
            net.clear_latency_factor()
        elif action.kind == "storm":  # pragma: no branch
            net.start_storm(action.addrs[0], action.factor, action.until_ms)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable timeline (sorted by firing time)."""
        lines = [a.describe() for a in sorted(self.actions, key=lambda a: a.time_ms)]
        return "\n".join(lines) if lines else "(empty schedule)"

    def __len__(self) -> int:
        return len(self.actions)
