"""Mid-simulation consistency checking.

Failure injection is only trustworthy if the system's steady state can
be audited after (or between) fault windows.  :class:`InvariantChecker`
inspects a :class:`~repro.core.system.HyperSubSystem` with global
knowledge (it is an oracle, not a protocol) and verifies:

* **ring consistency** -- every alive Chord node's first successor and
  predecessor are the clockwise-adjacent *alive* identifiers;
* **zone-responsibility coverage** -- every live user subscription is
  reachable: the alive node responsible for its zone key actually holds
  the subscription's box (in a live repository, a standby replica
  awaiting takeover, or a migrated store);
* **replica-count floors** -- with ``replication_factor = k``, every
  entry of every rendezvous-served repository exists on at least
  ``min(k, alive)`` alive nodes (the durability goal anti-entropy
  re-replication maintains after takeovers);
* **ordering** (opt-in) -- replays the telemetry span trace through the
  per-scheme ordering oracle (:mod:`repro.analysis.trace`): FIFO and
  causal runs must show zero out-of-order deliveries, redelivery and
  failover included (see docs/GUARANTEES.md).

Checks are individually switchable because they assert *stabilised*
state: ring consistency holds only after maintenance has converged, and
replica floors only when anti-entropy has had a full period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import HyperSubSystem


@dataclass
class InvariantReport:
    """Outcome of one :meth:`InvariantChecker.check` pass."""

    time_ms: float
    checked: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (
            f"invariants @ t={self.time_ms:.0f}ms "
            f"[{', '.join(self.checked)}]: "
        )
        if self.ok:
            return head + "OK"
        lines = [head + f"{len(self.violations)} violation(s)"]
        lines += [f"  - {v}" for v in self.violations[:20]]
        if len(self.violations) > 20:
            lines.append(f"  ... and {len(self.violations) - 20} more")
        return "\n".join(lines)


class InvariantChecker:
    """Global-knowledge auditor for a running HyperSub deployment."""

    def __init__(
        self,
        check_ring: bool = True,
        check_coverage: bool = True,
        check_replicas: bool = False,
        check_ordering: bool = False,
    ) -> None:
        self.check_ring = check_ring
        self.check_coverage = check_coverage
        self.check_replicas = check_replicas
        self.check_ordering = check_ordering

    # ------------------------------------------------------------------
    def check(self, system: "HyperSubSystem") -> InvariantReport:
        report = InvariantReport(time_ms=system.sim.now)
        alive = [n for n in system.nodes if n.alive()]
        if not alive:
            report.violations.append("no alive nodes")
            return report
        if self.check_ring and system.config.overlay == "chord":
            report.checked.append("ring")
            self._check_ring(alive, report)
        if self.check_coverage and system.config.overlay == "chord":
            # Responsibility resolution below uses Chord's successor
            # convention; Pastry coverage would need numerically-closest.
            report.checked.append("coverage")
            self._check_coverage(system, alive, report)
        if self.check_replicas:
            report.checked.append("replicas")
            self._check_replicas(system, alive, report)
        if self.check_ordering:
            report.checked.append("ordering")
            self._check_ordering(system, report)
        tel = getattr(system, "telemetry", None)
        if tel is not None:
            tel.registry.counter("invariants.checks").inc()
            if report.violations:
                tel.registry.counter("invariants.violations").inc(
                    len(report.violations)
                )
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _check_ring(alive, report: InvariantReport) -> None:
        by_id = sorted(alive, key=lambda n: n.node_id)
        n = len(by_id)
        for i, node in enumerate(by_id):
            want_succ = by_id[(i + 1) % n]
            want_pred = by_id[(i - 1) % n]
            if n == 1:
                continue
            if not node.successors:
                report.violations.append(
                    f"node {node.addr}: empty successor list"
                )
                continue
            got = node.successors[0]
            if got[0] != want_succ.node_id:
                report.violations.append(
                    f"node {node.addr}: successor {got[0]:#x} != next alive "
                    f"{want_succ.node_id:#x}"
                )
            if node.predecessor is None:
                report.violations.append(f"node {node.addr}: no predecessor")
            elif node.predecessor[0] != want_pred.node_id:
                report.violations.append(
                    f"node {node.addr}: predecessor {node.predecessor[0]:#x} "
                    f"!= previous alive {want_pred.node_id:#x}"
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _responsible(alive_sorted, key: int):
        """Successor-of-key over the *alive* identifier set."""
        for node in alive_sorted:
            if node.node_id >= key:
                return node
        return alive_sorted[0]  # wrap

    def _check_coverage(self, system, alive, report: InvariantReport) -> None:
        from repro.core.subscription import SubID

        alive_sorted = sorted(alive, key=lambda n: n.node_id)
        # Migrated stores move entries off the surrogate; index them once.
        migrated_holders: Set[Tuple[int, int]] = set()
        for node in alive:
            for _scheme, store in node.migrated.values():
                migrated_holders.update((s.nid, s.iid) for s in store.subids())
            for _scheme, store in node.standby_migrated.values():
                migrated_holders.update((s.nid, s.iid) for s in store.subids())
        for node in alive:
            for iid, (entity_key, _sub, zone) in node.own_subs.items():
                entity = system.entity(entity_key)
                key = entity.rotated_key(zone)
                home = self._responsible(alive_sorted, key)
                subid = SubID(node.node_id, iid)
                if self._holds(home, entity_key, zone, subid):
                    continue
                if (subid.nid, subid.iid) in migrated_holders:
                    continue
                report.violations.append(
                    f"sub {subid} of node {node.addr} not held by responsible "
                    f"node {home.addr} (zone {zone.code:#x}/L{zone.level})"
                )

    @staticmethod
    def _holds(home, entity_key: str, zone, subid) -> bool:
        repo_key = (entity_key, zone.code, zone.level)
        repo = home.zone_repos.get(repo_key)
        if repo is not None and subid in repo.store:
            return True
        standby = home.standby_repos.get(repo_key)
        return standby is not None and subid in standby.store

    # ------------------------------------------------------------------
    @staticmethod
    def _check_ordering(system, report: InvariantReport) -> None:
        """Replay the span trace through the per-scheme ordering oracle.

        Needs an active telemetry session with tracing on (the oracle
        is a trace replay, not live protocol state) and a configured
        ``ordering``; both missing prerequisites are reported as
        violations rather than silently passing.
        """
        from repro.analysis.trace import ordering_violations

        ordering = system.config.ordering
        if ordering == "none":
            report.violations.append(
                "ordering check requested but config.ordering == 'none'"
            )
            return
        tel = getattr(system, "telemetry", None)
        if tel is None or not tel.tracing:
            report.violations.append(
                "ordering check requested but span tracing is not active"
            )
            return
        for v in ordering_violations(tel.tracer.spans, ordering):
            report.violations.append(f"ordering: {v}")

    # ------------------------------------------------------------------
    @staticmethod
    def _check_replicas(system, alive, report: InvariantReport) -> None:
        k = system.config.replication_factor
        floor = min(k, len(alive))
        if floor <= 1:
            return
        # holders[(repo_key, subid)] = number of alive nodes with a copy
        holders: Dict[tuple, int] = {}
        for node in alive:
            for repo_key, repo in node.zone_repos.items():
                for sid in repo.store.subids():
                    holders[(repo_key, sid)] = holders.get((repo_key, sid), 0) + 1
            for repo_key, repo in node.standby_repos.items():
                if repo_key in node.zone_repos:
                    continue  # promoted: already counted live
                for sid in repo.store.subids():
                    holders[(repo_key, sid)] = holders.get((repo_key, sid), 0) + 1
        for node in alive:
            rendezvous_keys = {
                rk for keys in node.rendezvous_index.values() for rk in keys
            }
            for repo_key in rendezvous_keys:
                repo = node.zone_repos.get(repo_key)
                if repo is None:  # pragma: no cover - defensive
                    continue
                for sid in repo.store.subids():
                    have = holders.get((repo_key, sid), 0)
                    if have < floor:
                        report.violations.append(
                            f"repo {repo_key} entry {sid}: {have} copies "
                            f"< floor {floor}"
                        )
