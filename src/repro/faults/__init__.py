"""Fault-schedule injection and self-healing audit tools (extension).

The paper defers fault tolerance to future work; this package supplies
the scaffolding the robustness experiments need:

* :class:`FaultSchedule` -- a deterministic, seedable timeline of
  crash / rejoin / partition / loss / latency-spike actions driven by
  the simulator clock;
* :class:`InvariantChecker` / :class:`InvariantReport` -- global-
  knowledge audits of ring consistency, zone-responsibility coverage
  and replica-count floors, runnable mid-simulation.
"""

from repro.faults.invariants import InvariantChecker, InvariantReport
from repro.faults.schedule import FaultAction, FaultSchedule

__all__ = [
    "FaultAction",
    "FaultSchedule",
    "InvariantChecker",
    "InvariantReport",
]
