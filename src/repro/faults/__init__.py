"""Fault-schedule injection and self-healing audit tools (extension).

The paper defers fault tolerance to future work; this package supplies
the scaffolding the robustness experiments need:

* :class:`FaultSchedule` -- a deterministic, seedable timeline of
  crash / rejoin / partition / loss / latency-spike / gray-failure
  actions driven by the simulator clock, with build-time validation
  (:class:`FaultScheduleError`) and a round-trippable declarative spec;
* :class:`ChaosNemesis` / :class:`ChaosBudget` -- seeded random
  schedule generation within safety floors (chaos campaigns);
* :func:`shrink_spec` / :class:`ShrinkResult` -- ddmin + parameter
  shrinking of failing schedules to minimal replayable form;
* :class:`InvariantChecker` / :class:`InvariantReport` -- global-
  knowledge audits of ring consistency, zone-responsibility coverage
  and replica-count floors, runnable mid-simulation.
"""

from repro.faults.chaos import ChaosBudget, ChaosNemesis
from repro.faults.invariants import InvariantChecker, InvariantReport
from repro.faults.schedule import (
    FaultAction,
    FaultSchedule,
    FaultScheduleError,
)
from repro.faults.shrink import ShrinkResult, shrink_spec

__all__ = [
    "ChaosBudget",
    "ChaosNemesis",
    "FaultAction",
    "FaultSchedule",
    "FaultScheduleError",
    "InvariantChecker",
    "InvariantReport",
    "ShrinkResult",
    "shrink_spec",
]
