"""Failing-schedule shrinking: ddmin plus parameter-shrinking passes.

A nemesis-found failure is only actionable once it is *small*: a
25-entry random schedule that breaks an invariant usually contains one
or two entries that matter and a pile of noise.  :func:`shrink_spec`
minimizes a failing declarative fault spec (the JSON form of
:class:`~repro.faults.schedule.FaultSchedule`) against a caller-supplied
predicate ``fails(spec) -> bool``:

1. **ddmin** over the entry list (Zeller's delta debugging): try
   dropping chunks of entries at decreasing granularity, keeping any
   reduction that still fails;
2. **parameter passes** over the surviving entries: fewer addresses per
   entry, shorter windows, lower rates/factors, longer flap periods --
   each candidate kept only if it still fails.

Entry-level dependencies (a ``rejoin`` whose ``crash`` was dropped)
make some candidates invalid schedules; the harness treats a candidate
that fails to *build* as not-failing, so ddmin routes around them --
with one structural assist: dropping a ``crash`` also drops the
``rejoin`` of the same address set (and vice versa), since the pair is
one fault.

Re-running the scenario per candidate is the expensive part, so the
shrinker memoizes verdicts through a
:class:`~repro.runner.JsonDocStore` keyed by a content hash of the
candidate spec (plus a caller-provided scenario key).  A second shrink
of the same failure -- or a shrink resumed after a crash -- replays
from the store instead of re-simulating (``store.hits`` counts it).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.faults.schedule import FaultSchedule, FaultScheduleError

#: Shrink-store schema (hashed into every verdict key).
SHRINK_SCHEMA = 1


def spec_hash(spec: List[Dict], scenario_key: str = "") -> str:
    """Content hash naming one candidate: schema + scenario + spec."""
    payload = {
        "schema": SHRINK_SCHEMA,
        "scenario": scenario_key,
        "spec": spec,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def spec_is_valid(spec: List[Dict]) -> bool:
    """Does ``spec`` build into a schedule at all?"""
    try:
        FaultSchedule.from_spec(spec)
    except (FaultScheduleError, KeyError, TypeError):
        return False
    return True


@dataclass
class ShrinkResult:
    """What one shrink produced."""

    #: the minimized failing spec (== the input if nothing shrank).
    spec: List[Dict]
    #: successful reductions applied (each made the spec smaller/simpler).
    steps: int
    #: candidate evaluations requested (including cached ones).
    tested: int
    #: verdicts served from the store instead of re-running.
    cache_hits: int
    #: entries in / entries out, for reporting.
    initial_entries: int = 0
    final_entries: int = 0


class _Harness:
    """Predicate wrapper: validity gate + verdict memoization."""

    def __init__(
        self,
        fails: Callable[[List[Dict]], bool],
        store=None,
        scenario_key: str = "",
    ) -> None:
        self._fails = fails
        self._store = store
        self._scenario_key = scenario_key
        self._memo: Dict[str, bool] = {}
        self.tested = 0
        self.cache_hits = 0

    def __call__(self, spec: List[Dict]) -> bool:
        self.tested += 1
        key = spec_hash(spec, self._scenario_key)
        if key in self._memo:
            self.cache_hits += 1
            return self._memo[key]
        if self._store is not None:
            doc = self._store.get_doc(key)
            if doc is not None and "fails" in doc:
                self.cache_hits += 1
                verdict = bool(doc["fails"])
                self._memo[key] = verdict
                return verdict
        if not spec_is_valid(spec):
            # An unbuildable candidate cannot reproduce the failure.
            verdict = False
        else:
            verdict = bool(self._fails(spec))
        self._memo[key] = verdict
        if self._store is not None:
            self._store.put_doc(
                key,
                {
                    "schema": SHRINK_SCHEMA,
                    "scenario": self._scenario_key,
                    "fails": verdict,
                    "spec": spec,
                },
            )
        return verdict


# ----------------------------------------------------------------------
# Structural coupling: crash/rejoin travel as one fault
# ----------------------------------------------------------------------
def _entry_kind(entry: Dict) -> str:
    for k in entry:
        if k not in ("at", "from", "to", "seed"):
            return k
    raise FaultScheduleError(f"spec entry has no fault key: {entry}")


def _groups(spec: List[Dict]) -> List[Tuple[int, ...]]:
    """Partition entry indices into droppable units.

    A ``crash`` and the later ``rejoin`` covering the same address set
    form one unit (dropping half of the pair can only produce an
    invalid or *more* faulty schedule, never a smaller equivalent one);
    every other entry is its own unit.
    """
    units: List[Tuple[int, ...]] = []
    used = set()
    for i, entry in enumerate(spec):
        if i in used:
            continue
        kind = _entry_kind(entry)
        if kind == "crash":
            addrs = tuple(sorted(entry["crash"]))
            for j in range(i + 1, len(spec)):
                if j in used:
                    continue
                other = spec[j]
                if (
                    _entry_kind(other) == "rejoin"
                    and tuple(sorted(other["rejoin"])) == addrs
                ):
                    units.append((i, j))
                    used.update((i, j))
                    break
            else:
                units.append((i,))
                used.add(i)
        else:
            units.append((i,))
            used.add(i)
    return units


def _take(spec: List[Dict], units: List[Tuple[int, ...]]) -> List[Dict]:
    keep = sorted(i for unit in units for i in unit)
    return [spec[i] for i in keep]


# ----------------------------------------------------------------------
# Pass 1: ddmin over the unit list
# ----------------------------------------------------------------------
def _ddmin(
    spec: List[Dict], harness: _Harness
) -> Tuple[List[Dict], int]:
    """Minimal failing sub-list of units (Zeller's ddmin)."""
    units = _groups(spec)
    steps = 0
    n = 2
    while len(units) >= 2:
        chunk = max(1, len(units) // n)
        reduced = False
        start = 0
        while start < len(units):
            candidate_units = units[:start] + units[start + chunk:]
            if candidate_units and harness(_take(spec, candidate_units)):
                units = candidate_units
                steps += 1
                n = max(n - 1, 2)
                reduced = True
                # restart the scan at this granularity
                start = 0
                continue
            start += chunk
        if not reduced:
            if n >= len(units):
                break
            n = min(len(units), n * 2)
    return _take(spec, units), steps


# ----------------------------------------------------------------------
# Pass 2: parameter shrinking on the survivors
# ----------------------------------------------------------------------
def _param_candidates(entry: Dict) -> List[Dict]:
    """Simpler versions of one entry, most aggressive first."""
    kind = _entry_kind(entry)
    out: List[Dict] = []

    def with_(**patch) -> Dict:
        e = {k: (dict(v) if isinstance(v, dict) else v) for k, v in entry.items()}
        e.update(patch)
        return e

    if kind in ("crash", "rejoin"):
        addrs = list(entry[kind])
        if len(addrs) > 1:
            out.append(with_(**{kind: addrs[: len(addrs) // 2]}))
            out.append(with_(**{kind: addrs[:1]}))
    if kind == "loss":
        if entry["loss"] > 0.02:
            out.append(with_(loss=round(entry["loss"] / 2, 4)))
    if kind == "duplicate":
        if entry["duplicate"] > 0.05:
            out.append(with_(duplicate=round(entry["duplicate"] / 2, 4)))
    if kind == "reorder":
        if entry["reorder"] > 20.0:
            out.append(with_(reorder=round(entry["reorder"] / 2, 3)))
    if kind == "latency":
        if entry["latency"] > 1.5:
            out.append(with_(latency=round(1.0 + (entry["latency"] - 1.0) / 2, 3)))
    if kind == "slow":
        body = dict(entry["slow"])
        addrs = list(body["addrs"])
        if len(addrs) > 1:
            out.append(with_(slow={**body, "addrs": addrs[: len(addrs) // 2]}))
            out.append(with_(slow={**body, "addrs": addrs[:1]}))
        if body["factor"] < 0.5:
            out.append(with_(slow={**body, "factor": round(min(0.9, body["factor"] * 2), 4)}))
    if kind == "asym_partition":
        body = dict(entry["asym_partition"])
        src, dst = list(body["src"]), list(body["dst"])
        if len(src) > 1:
            out.append(with_(asym_partition={**body, "src": src[:1]}))
        if len(dst) > 1:
            out.append(with_(asym_partition={**body, "dst": dst[:1]}))
    if kind == "partition":
        groups = dict(entry["partition"])
        if len(groups) > 1:
            keys = sorted(groups)
            half = {k: groups[k] for k in keys[: len(keys) // 2]}
            out.append(with_(partition=half))
            out.append(with_(partition={keys[0]: groups[keys[0]]}))
    if kind == "flap":
        body = dict(entry["flap"])
        t0, t1 = entry["from"], entry["to"]
        if t1 - t0 > 2 * body["period"]:
            # fewer oscillations: double the period
            out.append(with_(flap={**body, "period": body["period"] * 2}))
    # window halving for every closed-window kind
    if "from" in entry and "to" in entry:
        t0, t1 = entry["from"], entry["to"]
        if t1 - t0 > 1_000.0:
            mid = round(t0 + (t1 - t0) / 2, 3)
            out.append(with_(to=mid))
    return out


def _shrink_params(
    spec: List[Dict], harness: _Harness, max_rounds: int = 8
) -> Tuple[List[Dict], int]:
    steps = 0
    for _ in range(max_rounds):
        improved = False
        for i in range(len(spec)):
            for cand_entry in _param_candidates(spec[i]):
                candidate = spec[:i] + [cand_entry] + spec[i + 1:]
                if harness(candidate):
                    spec = candidate
                    steps += 1
                    improved = True
                    break
        if not improved:
            break
    return spec, steps


# ----------------------------------------------------------------------
def shrink_spec(
    spec: List[Dict],
    fails: Callable[[List[Dict]], bool],
    store=None,
    scenario_key: str = "",
    param_rounds: int = 8,
) -> ShrinkResult:
    """Minimize a failing fault spec against ``fails``.

    ``fails(spec)`` must return True iff the scenario still exhibits
    the failure under that schedule; it is only ever called on specs
    that build (`spec_is_valid`).  ``store`` (a
    :class:`~repro.runner.JsonDocStore`) memoizes verdicts across
    candidates, shrink invocations and process restarts;
    ``scenario_key`` namespaces the verdicts so two different scenarios
    never share a cache line.

    Raises ``ValueError`` if the input spec does not fail -- a shrink
    of a passing schedule would "minimize" to the empty list and report
    garbage.
    """
    spec = [dict(e) for e in spec]
    harness = _Harness(fails, store=store, scenario_key=scenario_key)
    if not harness(spec):
        raise ValueError("shrink_spec: the input schedule does not fail")
    initial = len(spec)
    out, dd_steps = _ddmin(spec, harness)
    out, p_steps = _shrink_params(out, harness, max_rounds=param_rounds)
    return ShrinkResult(
        spec=out,
        steps=dd_steps + p_steps,
        tested=harness.tested,
        cache_hits=harness.cache_hits,
        initial_entries=initial,
        final_entries=len(out),
    )
