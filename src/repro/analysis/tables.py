"""Plain-text tables: what the benchmark harness prints.

The paper's figures are CDF plots and ranked-load curves; the harness
renders the same series as aligned text tables so a terminal run can be
compared against the paper directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.sim.stats import Distribution


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float) or isinstance(value, np.floating):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_cdf_table(
    dists: Dict[str, Distribution],
    points: Sequence[float] = (10, 25, 50, 75, 90, 95, 99, 100),
    value_name: str = "value",
    title: str | None = None,
) -> str:
    """One row per configuration: the value at each CDF percentile.

    A textual transposition of the paper's CDF plots -- reading a row
    left to right traces the curve.
    """
    headers = [value_name] + [f"p{int(q)}" for q in points] + ["mean"]
    rows = []
    for label, dist in dists.items():
        rows.append(
            [label] + [dist.percentile(q) for q in points] + [dist.mean]
        )
    return format_table(headers, rows, title=title)


def format_series(
    x_name: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Line-plot data as a table: one column per x, one row per series."""
    headers = [x_name] + [_fmt(x) for x in xs]
    rows = [[label] + list(ys) for label, ys in series.items()]
    return format_table(headers, rows, title=title)
