"""Terminal plots: CDF curves and line series as ASCII art.

The paper's figures are CDF plots; the benchmark harness prints the
same curves as character grids so a terminal run can be compared
against the paper at a glance (complementing the percentile tables in
:mod:`repro.analysis.tables`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.sim.stats import Distribution

#: Glyph per series, cycled in insertion order.
SERIES_GLYPHS = "*o+x#@%&"


def ascii_cdf_plot(
    dists: Dict[str, Distribution],
    width: int = 64,
    height: int = 16,
    x_label: str = "value",
    title: str | None = None,
    log_x: bool = False,
) -> str:
    """Plot several empirical CDFs on one character grid.

    The y axis is fixed to [0, 1]; the x axis spans the pooled value
    range (optionally log-scaled, for the paper's long-tailed metrics).
    """
    populated = {k: d for k, d in dists.items() if d.n}
    if not populated:
        return (title or "cdf") + ": (no data)"

    x_min = min(d.min for d in populated.values())
    x_max = max(d.max for d in populated.values())
    if log_x:
        x_min = max(x_min, 1e-9)
    if x_max <= x_min:
        x_max = x_min + 1.0

    def x_to_col(x: float) -> int:
        if log_x:
            frac = (np.log10(max(x, x_min)) - np.log10(x_min)) / (
                np.log10(x_max) - np.log10(x_min)
            )
        else:
            frac = (x - x_min) / (x_max - x_min)
        return min(int(frac * (width - 1)), width - 1)

    grid = [[" "] * width for _ in range(height)]
    for (label, dist), glyph in zip(populated.items(), SERIES_GLYPHS):
        values = dist.values
        for col in range(width):
            if log_x:
                x = 10 ** (
                    np.log10(x_min)
                    + col / (width - 1) * (np.log10(x_max) - np.log10(x_min))
                )
            else:
                x = x_min + col / (width - 1) * (x_max - x_min)
            f = np.searchsorted(values, x, side="right") / dist.n
            row = height - 1 - min(int(f * (height - 1)), height - 1)
            if grid[row][col] == " ":
                grid[row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y = 1.0 - i / (height - 1)
        axis = f"{y:4.2f} |"
        lines.append(axis + "".join(row))
    lines.append("     +" + "-" * width)
    lo = f"{x_min:.3g}"
    hi = f"{x_max:.3g}"
    scale = " (log x)" if log_x else ""
    pad = width - len(lo) - len(hi)
    lines.append("      " + lo + " " * max(pad, 1) + hi)
    lines.append(f"      x: {x_label}{scale}")
    legend = "  ".join(
        f"{glyph}={label}"
        for (label, _d), glyph in zip(populated.items(), SERIES_GLYPHS)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def ascii_series_plot(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Plot y-vs-x line series (Figure 5 style) as a character grid."""
    if not series or not len(xs):
        return (title or "series") + ": (no data)"
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max <= y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max <= x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, ys), glyph in zip(series.items(), SERIES_GLYPHS):
        for x, y in zip(xs, ys):
            col = min(int((x - x_min) / (x_max - x_min) * (width - 1)), width - 1)
            row = height - 1 - min(
                int((y - y_min) / (y_max - y_min) * (height - 1)), height - 1
            )
            grid[row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y = y_max - (y_max - y_min) * i / (height - 1)
        lines.append(f"{y:8.3g} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lo, hi = f"{x_min:.3g}", f"{x_max:.3g}"
    lines.append(" " * 10 + lo + " " * max(width - len(lo) - len(hi), 1) + hi)
    lines.append(f"          x: {x_label}   y: {y_label}")
    legend = "  ".join(
        f"{glyph}={label}" for (label, _ys), glyph in zip(series.items(), SERIES_GLYPHS)
    )
    lines.append("          " + legend)
    return "\n".join(lines)
