"""Event-dissemination tracing.

The paper's delivery mechanism is invisible in aggregate metrics: an
event fans out through "the embedded trees in the underlying DHT".
With ``HyperSubSystem.tracing = True`` every forwarded event packet
records an edge, and :func:`render_dissemination_tree` draws the
resulting tree -- which nodes relayed, which matched, where the SubID
lists grew and shrank.  Used by ``examples/trace_event.py`` and
invaluable when a delivery test fails.

Since the telemetry subsystem landed, ``EventRecord.edges`` and the
``forward`` spans in :mod:`repro.telemetry.tracing` are written by the
same call site in ``repro.core.node`` -- an exported ``trace.jsonl``
reconstructs exactly these trees (:func:`edges_from_trace`), and
``python -m repro trace --event N`` renders the full causal view
(matches, retransmissions, failover reroutes included).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


def render_dissemination_tree(record, max_depth: int = 32) -> str:
    """ASCII tree of one event's dissemination.

    ``record`` is an :class:`~repro.core.system.EventRecord` whose
    ``edges`` were captured (``system.tracing`` must have been on when
    the event was published).  Each line shows a node address, how many
    SubIDs it forwarded on that edge, and any local deliveries.
    """
    if not record.edges and not record.deliveries:
        return f"event {record.event_id}: no traffic (nothing matched)"
    children: Dict[int, List[Tuple[int, int]]] = {}
    for src, dst, n_entries in record.edges:
        children.setdefault(src, []).append((dst, n_entries))
    # Edge arrival order depends on packet interleaving; sorting each
    # sibling list by destination address makes the rendering a stable
    # artifact (diffable across runs of the same seed).
    for kids in children.values():
        kids.sort()
    delivered_at: Dict[int, int] = {}
    for _subid, addr, _hops, _lat in record.deliveries:
        delivered_at[addr] = delivered_at.get(addr, 0) + 1

    gave_up = (
        f", {record.gave_up_subids} subids abandoned"
        if getattr(record, "gave_up_subids", 0)
        else ""
    )
    lines: List[str] = [
        f"event {record.event_id} from node {record.publisher_addr} "
        f"({record.matched} deliveries, {record.messages} messages, "
        f"{record.bytes:.0f} bytes{gave_up})"
    ]
    seen: Set[int] = set()

    def visit(addr: int, entries: int, prefix: str, last: bool, depth: int) -> None:
        connector = "`-" if last else "|-"
        marks = []
        if entries:
            marks.append(f"{entries} subid{'s' if entries != 1 else ''}")
        if addr in delivered_at:
            marks.append(f"deliver x{delivered_at[addr]}")
        if addr in seen:
            marks.append("(seen)")
        label = f"node {addr}" + (f"  [{', '.join(marks)}]" if marks else "")
        lines.append(f"{prefix}{connector} {label}")
        if addr in seen or depth >= max_depth:
            return
        seen.add(addr)
        kids = children.get(addr, [])
        ext = "   " if last else "|  "
        for i, (dst, n) in enumerate(kids):
            visit(dst, n, prefix + ext, i == len(kids) - 1, depth + 1)

    root = record.publisher_addr
    seen.add(root)
    root_marks = f"  [deliver x{delivered_at[root]}]" if root in delivered_at else ""
    lines.append(f"node {root} (publisher){root_marks}")
    kids = children.get(root, [])
    for i, (dst, n) in enumerate(kids):
        visit(dst, n, "", i == len(kids) - 1, 1)
    return "\n".join(lines)


def transport_summary(stats) -> Dict[str, int]:
    """Reliable-transport health counters of one run.

    ``stats`` is a :class:`~repro.sim.stats.NetworkStats`.  Before these
    counters existed, a hop that exhausted its retries vanished without
    trace; now every retransmission and every abandoned packet (and the
    SubIDs it carried) is accounted.
    """
    return {
        "retransmissions": stats.retransmissions,
        "gave_up_packets": stats.gave_up,
        "gave_up_subids": stats.gave_up_subids,
        "gave_up_by_cause": stats.gave_up_by_cause,
        "busy_backoffs": stats.busy_backoffs,
        "shed": stats.shed,
        "breaker_opens": stats.breaker_opens,
        "dropped": stats.dropped,
        "dropped_by_cause": stats.dropped_by_cause,
        "duplicated": stats.duplicated,
        "reordered": stats.reordered,
        "queue_peak": stats.queue_peak,
        "durable": stats.durable_counts,
        "msgs_by_kind": dict(sorted(stats.msgs_by_kind.items())),
    }


def render_transport_summary(stats) -> str:
    s = transport_summary(stats)
    lines = [
        f"transport: {s['retransmissions']} retransmissions, "
        f"{s['gave_up_packets']} packets abandoned "
        f"({s['gave_up_subids']} subids at risk)"
    ]
    causes = {c: n for c, n in s["gave_up_by_cause"].items() if n}
    if causes:
        per_cause = ", ".join(f"{c} x{n}" for c, n in sorted(causes.items()))
        lines.append(f"gave up: {per_cause}")
    dur = {c: n for c, n in s["durable"].items() if n}
    if dur:
        per = ", ".join(f"{c} x{n}" for c, n in sorted(dur.items()))
        lines.append(f"durable: {per}")
    if s["busy_backoffs"] or s["shed"] or s["breaker_opens"]:
        lines.append(
            f"overload: {s['shed']} shed, {s['busy_backoffs']} busy "
            f"backoffs, {s['breaker_opens']} breaker opens"
        )
    if s["queue_peak"]:
        lines.append(f"ingress: peak queue depth {s['queue_peak']}")
    drops = {c: n for c, n in s["dropped_by_cause"].items() if n}
    if drops:
        per_cause = ", ".join(f"{c} x{n}" for c, n in sorted(drops.items()))
        lines.append(f"dropped: {s['dropped']} ({per_cause})")
    if s["msgs_by_kind"]:
        per_kind = ", ".join(
            f"{kind} x{count}" for kind, count in s["msgs_by_kind"].items()
        )
        lines.append(f"messages: {per_kind}")
    return "\n".join(lines)


def edges_from_trace(spans: Iterable[dict], event_id: int) -> List[Tuple[int, int, int]]:
    """``(src, dst, n_entries)`` edges of one event from an exported
    ``trace.jsonl`` -- the same set :class:`EventRecord.edges` holds,
    because both views are written by one call site.
    """
    from repro.telemetry.tracing import edges_from_spans

    return edges_from_spans(spans, event_id)


def _span_view(span) -> Tuple[str, float, int, int, int, dict]:
    """Normalise a :class:`Span` object or an exported JSONL dict."""
    if isinstance(span, dict):
        return (
            span.get("kind"),
            span.get("t", 0.0),
            span.get("sid", 0),
            span.get("node"),
            span.get("event"),
            span.get("attrs", {}),
        )
    return span.kind, span.t, span.sid, span.node, span.event, span.attrs


def _order_views(spans: Iterable) -> Tuple[dict, dict]:
    """Replay a trace into per-event publish info and per-subscriber
    delivery sequences.

    Returns ``(publishes, deliveries)``: ``publishes`` maps event id to
    ``{"pub", "t", "sid", "pseq", "deps"}`` from its ``publish`` span;
    ``deliveries`` maps ``(nid, iid)`` to the event ids delivered to
    that subscription, in delivery order (simulated time, then span id
    -- span ids are allocated in execution order, so ties within one
    simulated instant resolve to the true processing order).
    """
    publishes: Dict[int, dict] = {}
    deliveries: Dict[Tuple[int, int], List[Tuple[float, int, int]]] = {}
    for span in spans:
        kind, t, sid, node, event, attrs = _span_view(span)
        if kind == "publish":
            publishes[event] = {
                "pub": node,
                "t": t,
                "sid": sid,
                "pseq": attrs.get("pseq"),
                "deps": attrs.get("deps") or [],
            }
        elif kind == "deliver":
            subid = tuple(attrs["subid"])
            deliveries.setdefault(subid, []).append((t, sid, event))
    ordered = {
        subid: [eid for _t, _sid, eid in sorted(seq)]
        for subid, seq in deliveries.items()
    }
    return publishes, ordered


def check_fifo_order(spans: Iterable) -> List[dict]:
    """Publisher-FIFO oracle over a span trace.

    A violation is a subscription that observed two events of the same
    publisher out of publish order.  Publish order is reconstructed
    from the ``publish`` spans (time, then span id), so the oracle is
    protocol-independent: it never looks at sequence numbers the
    implementation may have assigned.
    """
    publishes, deliveries = _order_views(spans)
    index: Dict[int, Tuple[int, int]] = {}
    counters: Dict[int, int] = {}
    for eid, info in sorted(
        publishes.items(), key=lambda kv: (kv[1]["t"], kv[1]["sid"])
    ):
        pub = info["pub"]
        counters[pub] = counters.get(pub, 0) + 1
        index[eid] = (pub, counters[pub])
    violations: List[dict] = []
    for subid, seq in deliveries.items():
        high: Dict[int, Tuple[int, int]] = {}  # pub -> (index, event)
        for eid in seq:
            if eid not in index:
                continue  # delivered event published outside the trace
            pub, i = index[eid]
            prev = high.get(pub)
            if prev is not None and i < prev[0]:
                violations.append(
                    {
                        "check": "fifo",
                        "subid": list(subid),
                        "publisher": pub,
                        "event": eid,
                        "after_event": prev[1],
                    }
                )
            if prev is None or i > prev[0]:
                high[pub] = (i, eid)
    return violations


def check_causal_order(spans: Iterable) -> List[dict]:
    """Causal-order oracle over a span trace.

    Requires the publish spans to carry ``pseq``/``deps`` attributes
    (durable causal mode records them).  Checks, per subscription:

    * publisher-FIFO by ``pseq`` (causal order contains FIFO), and
    * for every delivered event ``e`` with a dependency ``(a, n)``: no
      event of publisher ``a`` with ``pseq <= n`` may be delivered
      *after* ``e`` -- the dependency happened-before ``e``, so a
      subscription receiving both must see it first.
    """
    publishes, deliveries = _order_views(spans)
    violations: List[dict] = []
    for subid, seq in deliveries.items():
        infos = [(eid, publishes.get(eid)) for eid in seq]
        high: Dict[int, Tuple[int, int]] = {}
        for eid, info in infos:
            if info is None or info["pseq"] is None:
                continue
            pub, pseq = info["pub"], info["pseq"]
            prev = high.get(pub)
            if prev is not None and pseq < prev[0]:
                violations.append(
                    {
                        "check": "causal-fifo",
                        "subid": list(subid),
                        "publisher": pub,
                        "event": eid,
                        "after_event": prev[1],
                    }
                )
            if prev is None or pseq > prev[0]:
                high[pub] = (pseq, eid)
        for i, (eid, info) in enumerate(infos):
            if info is None:
                continue
            for a, n in info["deps"]:
                for later_eid, later in infos[i + 1:]:
                    if (
                        later is not None
                        and later["pub"] == a
                        and later["pseq"] is not None
                        and later["pseq"] <= n
                    ):
                        violations.append(
                            {
                                "check": "causal-dep",
                                "subid": list(subid),
                                "event": eid,
                                "dep": [a, n],
                                "delivered_after": later_eid,
                            }
                        )
    return violations


def ordering_violations(spans: Iterable, ordering: str) -> List[dict]:
    """Dispatch to the oracle matching a run's ``config.ordering``."""
    if ordering == "fifo":
        return check_fifo_order(spans)
    if ordering == "causal":
        return check_causal_order(spans)
    return []


def tree_stats(record) -> Dict[str, float]:
    """Fan-out statistics of one event's dissemination tree."""
    children: Dict[int, int] = {}
    nodes: Set[int] = {record.publisher_addr}
    for src, dst, _n in record.edges:
        children[src] = children.get(src, 0) + 1
        nodes.add(src)
        nodes.add(dst)
    fanouts = list(children.values())
    return {
        "nodes_touched": len(nodes),
        "relay_nodes": len(children),
        "max_fanout": max(fanouts, default=0),
        "mean_fanout": sum(fanouts) / len(fanouts) if fanouts else 0.0,
    }
