"""Event-dissemination tracing.

The paper's delivery mechanism is invisible in aggregate metrics: an
event fans out through "the embedded trees in the underlying DHT".
With ``HyperSubSystem.tracing = True`` every forwarded event packet
records an edge, and :func:`render_dissemination_tree` draws the
resulting tree -- which nodes relayed, which matched, where the SubID
lists grew and shrank.  Used by ``examples/trace_event.py`` and
invaluable when a delivery test fails.

Since the telemetry subsystem landed, ``EventRecord.edges`` and the
``forward`` spans in :mod:`repro.telemetry.tracing` are written by the
same call site in ``repro.core.node`` -- an exported ``trace.jsonl``
reconstructs exactly these trees (:func:`edges_from_trace`), and
``python -m repro trace --event N`` renders the full causal view
(matches, retransmissions, failover reroutes included).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


def render_dissemination_tree(record, max_depth: int = 32) -> str:
    """ASCII tree of one event's dissemination.

    ``record`` is an :class:`~repro.core.system.EventRecord` whose
    ``edges`` were captured (``system.tracing`` must have been on when
    the event was published).  Each line shows a node address, how many
    SubIDs it forwarded on that edge, and any local deliveries.
    """
    if not record.edges and not record.deliveries:
        return f"event {record.event_id}: no traffic (nothing matched)"
    children: Dict[int, List[Tuple[int, int]]] = {}
    for src, dst, n_entries in record.edges:
        children.setdefault(src, []).append((dst, n_entries))
    # Edge arrival order depends on packet interleaving; sorting each
    # sibling list by destination address makes the rendering a stable
    # artifact (diffable across runs of the same seed).
    for kids in children.values():
        kids.sort()
    delivered_at: Dict[int, int] = {}
    for _subid, addr, _hops, _lat in record.deliveries:
        delivered_at[addr] = delivered_at.get(addr, 0) + 1

    gave_up = (
        f", {record.gave_up_subids} subids abandoned"
        if getattr(record, "gave_up_subids", 0)
        else ""
    )
    lines: List[str] = [
        f"event {record.event_id} from node {record.publisher_addr} "
        f"({record.matched} deliveries, {record.messages} messages, "
        f"{record.bytes:.0f} bytes{gave_up})"
    ]
    seen: Set[int] = set()

    def visit(addr: int, entries: int, prefix: str, last: bool, depth: int) -> None:
        connector = "`-" if last else "|-"
        marks = []
        if entries:
            marks.append(f"{entries} subid{'s' if entries != 1 else ''}")
        if addr in delivered_at:
            marks.append(f"deliver x{delivered_at[addr]}")
        if addr in seen:
            marks.append("(seen)")
        label = f"node {addr}" + (f"  [{', '.join(marks)}]" if marks else "")
        lines.append(f"{prefix}{connector} {label}")
        if addr in seen or depth >= max_depth:
            return
        seen.add(addr)
        kids = children.get(addr, [])
        ext = "   " if last else "|  "
        for i, (dst, n) in enumerate(kids):
            visit(dst, n, prefix + ext, i == len(kids) - 1, depth + 1)

    root = record.publisher_addr
    seen.add(root)
    root_marks = f"  [deliver x{delivered_at[root]}]" if root in delivered_at else ""
    lines.append(f"node {root} (publisher){root_marks}")
    kids = children.get(root, [])
    for i, (dst, n) in enumerate(kids):
        visit(dst, n, "", i == len(kids) - 1, 1)
    return "\n".join(lines)


def transport_summary(stats) -> Dict[str, int]:
    """Reliable-transport health counters of one run.

    ``stats`` is a :class:`~repro.sim.stats.NetworkStats`.  Before these
    counters existed, a hop that exhausted its retries vanished without
    trace; now every retransmission and every abandoned packet (and the
    SubIDs it carried) is accounted.
    """
    return {
        "retransmissions": stats.retransmissions,
        "gave_up_packets": stats.gave_up,
        "gave_up_subids": stats.gave_up_subids,
        "busy_backoffs": stats.busy_backoffs,
        "shed": stats.shed,
        "breaker_opens": stats.breaker_opens,
        "dropped": stats.dropped,
        "dropped_by_cause": stats.dropped_by_cause,
        "msgs_by_kind": dict(sorted(stats.msgs_by_kind.items())),
    }


def render_transport_summary(stats) -> str:
    s = transport_summary(stats)
    lines = [
        f"transport: {s['retransmissions']} retransmissions, "
        f"{s['gave_up_packets']} packets abandoned "
        f"({s['gave_up_subids']} subids at risk)"
    ]
    if s["busy_backoffs"] or s["shed"] or s["breaker_opens"]:
        lines.append(
            f"overload: {s['shed']} shed, {s['busy_backoffs']} busy "
            f"backoffs, {s['breaker_opens']} breaker opens"
        )
    drops = {c: n for c, n in s["dropped_by_cause"].items() if n}
    if drops:
        per_cause = ", ".join(f"{c} x{n}" for c, n in sorted(drops.items()))
        lines.append(f"dropped: {s['dropped']} ({per_cause})")
    if s["msgs_by_kind"]:
        per_kind = ", ".join(
            f"{kind} x{count}" for kind, count in s["msgs_by_kind"].items()
        )
        lines.append(f"messages: {per_kind}")
    return "\n".join(lines)


def edges_from_trace(spans: Iterable[dict], event_id: int) -> List[Tuple[int, int, int]]:
    """``(src, dst, n_entries)`` edges of one event from an exported
    ``trace.jsonl`` -- the same set :class:`EventRecord.edges` holds,
    because both views are written by one call site.
    """
    from repro.telemetry.tracing import edges_from_spans

    return edges_from_spans(spans, event_id)


def tree_stats(record) -> Dict[str, float]:
    """Fan-out statistics of one event's dissemination tree."""
    children: Dict[int, int] = {}
    nodes: Set[int] = {record.publisher_addr}
    for src, dst, _n in record.edges:
        children[src] = children.get(src, 0) + 1
        nodes.add(src)
        nodes.add(dst)
    fanouts = list(children.values())
    return {
        "nodes_touched": len(nodes),
        "relay_nodes": len(children),
        "max_fanout": max(fanouts, default=0),
        "mean_fanout": sum(fanouts) / len(fanouts) if fanouts else 0.0,
    }
