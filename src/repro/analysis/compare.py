"""Shape checks: did the reproduction preserve the paper's findings?

The harness is not expected to match the paper's absolute numbers (the
substrate is a reconstruction), but each experiment asserts the
qualitative *shape* -- who wins, in which direction, roughly how
strongly.  :class:`ShapeReport` accumulates those checks and renders a
pass/fail summary that EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Check:
    description: str
    passed: bool
    detail: str


@dataclass
class ShapeReport:
    """Accumulates qualitative findings for one experiment."""

    experiment: str
    checks: List[Check] = field(default_factory=list)

    def expect_less(self, a: float, b: float, description: str, slack: float = 1.0) -> bool:
        """Record the finding ``a < b * slack``."""
        ok = a < b * slack
        self.checks.append(
            Check(description, ok, f"{a:.3g} vs {b:.3g} (slack {slack:g})")
        )
        return ok

    def expect_greater(self, a: float, b: float, description: str, slack: float = 1.0) -> bool:
        ok = a > b * slack
        self.checks.append(
            Check(description, ok, f"{a:.3g} vs {b:.3g} (slack {slack:g})")
        )
        return ok

    def expect_within(
        self, value: float, low: float, high: float, description: str
    ) -> bool:
        ok = low <= value <= high
        self.checks.append(
            Check(description, ok, f"{value:.3g} in [{low:.3g}, {high:.3g}]")
        )
        return ok

    def expect_true(self, condition: bool, description: str, detail: str = "") -> bool:
        self.checks.append(Check(description, bool(condition), detail))
        return bool(condition)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = [f"shape checks -- {self.experiment}:"]
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.description}  ({c.detail})")
        return "\n".join(lines)
