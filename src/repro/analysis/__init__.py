"""Result formatting and shape comparison for the experiment harness."""

from repro.analysis.tables import format_table, format_cdf_table, format_series
from repro.analysis.compare import ShapeReport
from repro.analysis.trace import render_dissemination_tree, tree_stats
from repro.analysis.plots import ascii_cdf_plot, ascii_series_plot

__all__ = [
    "format_table",
    "format_cdf_table",
    "format_series",
    "ShapeReport",
    "render_dissemination_tree",
    "tree_stats",
    "ascii_cdf_plot",
    "ascii_series_plot",
]
