"""Parallel, crash-tolerant experiment runner with a persistent result store.

The paper's evaluation (Section 5) is a sweep of *independent*
:class:`~repro.experiments.common.DeliveryConfig` points -- every
figure is embarrassingly parallel and every point is deterministic
given its seeds.  This module exploits both facts:

* :class:`ResultStore` -- an on-disk cache under ``out/results/``
  (override with ``REPRO_RESULTS_DIR``; empty or ``none`` disables it).
  Each :class:`~repro.experiments.common.DeliveryResult` is serialized
  as JSON under a content hash of the frozen config, the workload
  specification and a store schema version, so Figures 2-4 share the
  same four runs across processes *and* across invocations, and a
  killed sweep resumes by skipping the points already on disk.

* :func:`run_sweep` / :func:`map_configs` -- fan independent points out
  over a :class:`~concurrent.futures.ProcessPoolExecutor` (``--jobs N``
  or ``REPRO_JOBS``).  A worker failure is retried once in the parent
  and then reported per-point instead of aborting the sweep; each
  worker runs under its own :class:`~repro.telemetry.TelemetrySession`
  whose manifest is merged back into the parent session (worker
  wall-times, per-point seeds, cache hit/miss per point).

* :func:`map_tasks` -- the same pool/retry discipline for experiment
  work that is not a ``DeliveryConfig`` (Table 2's topology
  measurements, the B1 baseline systems).

Determinism contract: a parallel sweep produces numerically identical
``DeliveryResult`` series to a serial one -- every point owns its RNG
seeds (``DeliveryConfig.seed`` / ``workload_seed``), workers share no
mutable state, and :func:`result_digest` (a hash over every numeric
series, excluding wall time) makes the equality checkable; the
property tests in ``tests/test_runner.py`` enforce it.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.common import (
    DeliveryConfig,
    DeliveryResult,
    default_paper_spec,
)
from repro.sim.stats import Distribution
from repro.telemetry import current_session
from repro.workloads.spec import WorkloadSpec

#: Bump when the serialized layout or the meaning of any stored field
#: changes; the version is hashed into every key, so old entries are
#: simply never read again (they can be deleted at leisure).
STORE_SCHEMA = 1

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = os.path.join("out", "results")

#: ``DeliveryResult`` fields serialized as numeric arrays.  Order
#: matters: it is part of the content digest.
_DISTRIBUTION_FIELDS = (
    "matched_pct",
    "matched_counts",
    "max_hops",
    "max_latency_ms",
    "bandwidth_kb",
)
_ARRAY_FIELDS = ("in_bw_kb", "out_bw_kb", "loads", "sub_loads")
_INT_ARRAY_FIELDS = ("loads", "sub_loads")
_SCALAR_FIELDS = ("total_subscriptions", "avg_rtt_ms")


def resolve_spec(
    cfg: DeliveryConfig, spec: Optional[WorkloadSpec] = None
) -> WorkloadSpec:
    """The workload a point actually runs (explicit spec or Table 1)."""
    return spec or default_paper_spec(subs_per_node=cfg.subs_per_node)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS")
        if raw is None:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {raw!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _canonical(obj: Any) -> str:
    """Deterministic JSON (sorted keys, no whitespace) for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def store_key(cfg: DeliveryConfig, spec: Optional[WorkloadSpec] = None) -> str:
    """Content hash identifying one point: schema + config + workload."""
    payload = {
        "schema": STORE_SCHEMA,
        "config": asdict(cfg),
        "workload": asdict(resolve_spec(cfg, spec)),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def _series_payload(result: DeliveryResult) -> Dict[str, Any]:
    """Every numeric series of a result (wall time excluded: it is
    provenance, not data, and must not affect the content digest)."""
    out: Dict[str, Any] = {}
    for name in _DISTRIBUTION_FIELDS:
        out[name] = [float(v) for v in getattr(result, name).values]
    for name in _ARRAY_FIELDS:
        arr = getattr(result, name)
        if name in _INT_ARRAY_FIELDS:
            out[name] = [int(v) for v in arr]
        else:
            out[name] = [float(v) for v in arr]
    for name in _SCALAR_FIELDS:
        value = getattr(result, name)
        out[name] = int(value) if isinstance(value, (int, np.integer)) else float(value)
    return out


def result_digest(result: DeliveryResult) -> str:
    """Hash of every numeric series (the determinism-contract witness)."""
    payload = {
        "schema": STORE_SCHEMA,
        "config": asdict(result.config),
        "series": _series_payload(result),
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def serialize_result(
    result: DeliveryResult, spec: Optional[WorkloadSpec] = None
) -> Dict[str, Any]:
    """JSON-safe document for one stored point."""
    return {
        "schema": STORE_SCHEMA,
        "key": store_key(result.config, spec),
        "label": result.config.label,
        "digest": result_digest(result),
        "config": asdict(result.config),
        "workload": asdict(resolve_spec(result.config, spec)),
        "series": _series_payload(result),
        "meta": {
            "wall_seconds": float(result.wall_seconds),
            "created_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "pid": os.getpid(),
        },
    }


def _config_from_dict(doc: Dict[str, Any]) -> DeliveryConfig:
    doc = dict(doc)
    if doc.get("subschemes") is not None:
        doc["subschemes"] = tuple(tuple(g) for g in doc["subschemes"])
    return DeliveryConfig(**doc)


def deserialize_result(doc: Dict[str, Any]) -> DeliveryResult:
    """Rebuild a :class:`DeliveryResult` from :func:`serialize_result`."""
    series = doc["series"]
    kwargs: Dict[str, Any] = {"config": _config_from_dict(doc["config"])}
    for name in _DISTRIBUTION_FIELDS:
        kwargs[name] = Distribution(
            np.asarray(series[name], dtype=np.float64)
        )
    for name in _ARRAY_FIELDS:
        dtype = np.int64 if name in _INT_ARRAY_FIELDS else np.float64
        kwargs[name] = np.asarray(series[name], dtype=dtype)
    kwargs["total_subscriptions"] = int(series["total_subscriptions"])
    kwargs["avg_rtt_ms"] = float(series["avg_rtt_ms"])
    kwargs["wall_seconds"] = float(doc["meta"]["wall_seconds"])
    return DeliveryResult(**kwargs)


# ----------------------------------------------------------------------
# The persistent store
# ----------------------------------------------------------------------
class JsonDocStore:
    """Generic content-addressed JSON document cache, one file per key.

    The storage discipline every persistent cache in the repo shares:
    writes are atomic (tempfile + ``os.replace``), so a killed run never
    leaves a truncated entry; a corrupt or unreadable file is treated as
    a miss, not an error.  ``hits`` / ``misses`` count ``get_doc``
    outcomes, so callers (the chaos shrinker, the sweep manifest) can
    report how much work the cache absorbed.

    :class:`ResultStore` layers ``DeliveryResult`` (de)serialization on
    top; the chaos shrinker uses it directly to cache scenario verdicts
    keyed by a schedule hash.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def contains_key(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get_doc(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored document for ``key``, or ``None`` on any miss
        (absent, unreadable, corrupt, or not a JSON object)."""
        try:
            doc = json.loads(self.path_for(key).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if not isinstance(doc, dict):
            self.misses += 1
            return None
        self.hits += 1
        return doc

    def put_doc(self, key: str, doc: Dict[str, Any]) -> str:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return key

    def count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))


class ResultStore(JsonDocStore):
    """On-disk ``DeliveryResult`` cache, one JSON file per content key.

    Inherits the atomic-write / corrupt-is-a-miss discipline from
    :class:`JsonDocStore`; adds the ``DeliveryConfig``-keyed API and the
    schema gate.
    """

    def contains(
        self, cfg: DeliveryConfig, spec: Optional[WorkloadSpec] = None
    ) -> bool:
        return self.contains_key(store_key(cfg, spec))

    def get(
        self, cfg: DeliveryConfig, spec: Optional[WorkloadSpec] = None
    ) -> Optional[DeliveryResult]:
        doc = self.get_doc(store_key(cfg, spec))
        if doc is None:
            return None
        if doc.get("schema") != STORE_SCHEMA:
            return None
        try:
            return deserialize_result(doc)
        except (KeyError, TypeError, ValueError):
            return None

    def put(
        self, result: DeliveryResult, spec: Optional[WorkloadSpec] = None
    ) -> str:
        doc = serialize_result(result, spec)
        return self.put_doc(doc["key"], doc)


def store_root() -> Optional[Path]:
    """Store location from ``REPRO_RESULTS_DIR`` (empty/none = disabled)."""
    raw = os.environ.get("REPRO_RESULTS_DIR", DEFAULT_STORE_DIR)
    if raw.strip().lower() in ("", "none", "off"):
        return None
    return Path(raw)


def default_store() -> Optional[ResultStore]:
    """The ambient store, or ``None`` when persistence is disabled."""
    root = store_root()
    return None if root is None else ResultStore(root)


# ----------------------------------------------------------------------
# Sweep bookkeeping
# ----------------------------------------------------------------------
@dataclass
class PointReport:
    """Provenance of one sweep point (lands in the sweep manifest)."""

    label: str
    key: str
    #: ``memo`` (in-process cache), ``store`` (disk), ``run`` (executed),
    #: or ``failed`` (both attempts errored).
    source: str
    seed: int
    workload_seed: int
    attempts: int = 0
    worker: Optional[int] = None
    wall_seconds: float = 0.0
    digest: Optional[str] = None
    error: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class SweepOutcome:
    """Everything one sweep produced, in input-config order."""

    results: List[Optional[DeliveryResult]]
    reports: List[PointReport]
    jobs: int
    wall_seconds: float
    label: str = "sweep"

    def _count(self, source: str) -> int:
        return sum(1 for r in self.reports if r.source == source)

    @property
    def store_hits(self) -> int:
        return self._count("store")

    @property
    def memo_hits(self) -> int:
        return self._count("memo")

    @property
    def executed(self) -> int:
        return self._count("run")

    @property
    def failures(self) -> List[PointReport]:
        return [r for r in self.reports if r.source == "failed"]

    def worker_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker point counts and wall time (executed points only)."""
        workers: Dict[str, Dict[str, Any]] = {}
        for rep in self.reports:
            if rep.source != "run" or rep.worker is None:
                continue
            w = workers.setdefault(
                f"worker-{rep.worker}", {"points": 0, "wall_seconds": 0.0}
            )
            w["points"] += 1
            w["wall_seconds"] += rep.wall_seconds
        return workers

    def manifest_block(self) -> Dict[str, Any]:
        """The ``sweeps`` entry recorded in the parent run manifest."""
        return {
            "label": self.label,
            "jobs": self.jobs,
            "points_total": len(self.reports),
            "store_hits": self.store_hits,
            "memo_hits": self.memo_hits,
            "executed": self.executed,
            "failed": len(self.failures),
            "wall_seconds": self.wall_seconds,
            "workers": self.worker_summary(),
            "points": [r.as_dict() for r in self.reports],
        }


class _SweepMonitor:
    """Live progress of one sweep (see ``repro.telemetry.export``).

    Every resolved point updates two artifacts in the parent session's
    output directory: ``sweep_status.json`` (atomically rewritten
    progress document -- points done/failed/retried, store hits,
    events/s, RSS, per-worker lag) and one line in
    ``metrics_stream.jsonl`` (a full metric snapshot).  ``python -m
    repro top DIR`` renders both while the sweep is running.
    """

    def __init__(self, session, label: str, jobs: int, total: int) -> None:
        self.session = session
        self.label = label
        self.jobs = jobs
        self.total = total
        self.t0 = time.perf_counter()
        self.done = 0
        self.counts = {"run": 0, "store": 0, "memo": 0, "failed": 0}
        self.retried = 0
        self.events_done = 0
        self.workers: Dict[str, Dict[str, Any]] = {}

    def _status(self, finished: bool) -> Dict[str, Any]:
        from repro.telemetry.export import rss_bytes

        elapsed = time.perf_counter() - self.t0
        return {
            "label": self.label,
            "pid": os.getpid(),
            "jobs": self.jobs,
            "points_total": self.total,
            "done": self.done,
            "executed": self.counts["run"],
            "store_hits": self.counts["store"],
            "memo_hits": self.counts["memo"],
            "failed": self.counts["failed"],
            "retried": self.retried,
            "events_done": self.events_done,
            "events_per_sec": self.events_done / elapsed if elapsed > 0 else 0.0,
            "elapsed_seconds": elapsed,
            "rss_bytes": rss_bytes(),
            "workers": self.workers,
            "finished": finished,
        }

    def note(self, rep: PointReport, cfg: DeliveryConfig) -> None:
        """One point resolved (any source); refresh both live artifacts."""
        from repro.telemetry.export import STATUS_FILENAME, write_status

        self.done += 1
        self.counts[rep.source] = self.counts.get(rep.source, 0) + 1
        if rep.attempts > 1:
            self.retried += 1
        if rep.source == "run":
            self.events_done += cfg.num_events
            if rep.worker is not None:
                w = self.workers.setdefault(
                    f"worker-{rep.worker}",
                    {"points": 0, "wall_seconds": 0.0},
                )
                w["points"] += 1
                w["wall_seconds"] += rep.wall_seconds
                w["last_done_wall"] = time.time()
        write_status(
            self.session.out_dir / STATUS_FILENAME, self._status(False)
        )
        self.session.stream_snapshot(
            kind="sweep",
            point=rep.label,
            source=rep.source,
            done=self.done,
            points_total=self.total,
        )

    def finish(self) -> None:
        from repro.telemetry.export import STATUS_FILENAME, write_status

        write_status(
            self.session.out_dir / STATUS_FILENAME, self._status(True)
        )


class SweepError(RuntimeError):
    """Raised after a sweep completes with one or more failed points.

    Every other point has already been computed (and persisted when the
    store is enabled), so rerunning the same sweep resumes from the
    store and retries only the failed points.
    """

    def __init__(self, outcome: SweepOutcome) -> None:
        self.outcome = outcome
        lines = [
            f"{len(outcome.failures)} of {len(outcome.reports)} sweep "
            f"points failed (completed points are in the result store):"
        ]
        for rep in outcome.failures:
            first_line = (rep.error or "unknown error").strip().splitlines()
            lines.append(
                f"  - {rep.label} (seed={rep.seed}, attempts="
                f"{rep.attempts}): {first_line[-1] if first_line else '?'}"
            )
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# Worker entry points (top-level: must be picklable)
# ----------------------------------------------------------------------
def _worker_run_point(
    cfg: DeliveryConfig,
    spec: Optional[WorkloadSpec],
    results_dir: Optional[str],
) -> Dict[str, Any]:
    """Run one point in a pool worker under a private TelemetrySession.

    Returns a dict (never raises): ``{"ok": True, result, manifest,
    wall_seconds, pid}`` or ``{"ok": False, error, pid}``.  The store
    write happens inside ``run_delivery`` exactly as in a serial run.
    """
    from repro.experiments import common
    from repro.telemetry.session import TelemetrySession, set_session

    if results_dir is not None:
        os.environ["REPRO_RESULTS_DIR"] = results_dir
    tmp = tempfile.mkdtemp(prefix="repro-worker-")
    session = TelemetrySession(
        tmp, label=f"worker-{os.getpid()}", tracing=False, profiling=False
    )
    previous = current_session()
    set_session(session)
    t0 = time.perf_counter()
    try:
        result = common.run_delivery(cfg, spec=spec)
        manifest = session.build_manifest(
            command=f"runner-worker pid={os.getpid()}"
        )
        return {
            "ok": True,
            "result": result,
            "manifest": manifest,
            "wall_seconds": time.perf_counter() - t0,
            "pid": os.getpid(),
        }
    except Exception:
        return {
            "ok": False,
            "error": traceback.format_exc(),
            "pid": os.getpid(),
        }
    finally:
        set_session(previous)
        shutil.rmtree(tmp, ignore_errors=True)


def _worker_run_task(fn: Callable, item: Any) -> Dict[str, Any]:
    """Generic pool worker for :func:`map_tasks` (never raises)."""
    t0 = time.perf_counter()
    try:
        return {
            "ok": True,
            "result": fn(item),
            "wall_seconds": time.perf_counter() - t0,
            "pid": os.getpid(),
        }
    except Exception:
        return {
            "ok": False,
            "error": traceback.format_exc(),
            "pid": os.getpid(),
        }


# ----------------------------------------------------------------------
# The sweep runner
# ----------------------------------------------------------------------
def run_sweep(
    configs: Sequence[DeliveryConfig],
    spec: Optional[WorkloadSpec] = None,
    jobs: Optional[int] = None,
    label: str = "sweep",
) -> SweepOutcome:
    """Compute every config's :class:`DeliveryResult`, in input order.

    Resolution order per point: in-process memo, then the persistent
    store (resume semantics), then execution -- in parallel when
    ``jobs > 1``.  Failures are retried once in the parent process (so
    a crashed *worker* cannot take the sweep down with it) and then
    recorded per-point; the caller sees them as a :class:`SweepError`
    raised by :func:`map_configs` after every other point finished.
    """
    from repro.experiments import common

    jobs = resolve_jobs(jobs)
    t_start = time.perf_counter()
    store = default_store()
    results_dir = str(store.root) if store is not None else None

    # Order-preserving dedupe: sweeps legitimately repeat a config
    # (e.g. the ablation's PNS-on point equals its R=8 point).
    unique: List[DeliveryConfig] = []
    seen: Dict[DeliveryConfig, int] = {}
    for cfg in configs:
        if cfg not in seen:
            seen[cfg] = len(unique)
            unique.append(cfg)

    by_cfg: Dict[DeliveryConfig, DeliveryResult] = {}
    reports: Dict[DeliveryConfig, PointReport] = {}
    pending: List[DeliveryConfig] = []
    session = current_session()
    monitor = (
        _SweepMonitor(session, label, jobs, len(unique))
        if session is not None
        else None
    )

    def _report(cfg: DeliveryConfig, source: str, **kw) -> PointReport:
        rep = PointReport(
            label=cfg.label,
            key=store_key(cfg, spec),
            source=source,
            seed=cfg.seed,
            workload_seed=cfg.workload_seed,
            **kw,
        )
        reports[cfg] = rep
        if monitor is not None:
            monitor.note(rep, cfg)
        return rep

    # -- phase 1: resolve from memo and store (the resume path) --------
    for cfg in unique:
        if spec is None and cfg in common._memo:
            by_cfg[cfg] = common._memo[cfg]
            _report(cfg, "memo", digest=result_digest(by_cfg[cfg]))
            continue
        if store is not None:
            hit = store.get(cfg, spec)
            if hit is not None:
                by_cfg[cfg] = hit
                if spec is None:
                    common._memo[cfg] = hit
                _report(cfg, "store", digest=result_digest(hit))
                continue
        pending.append(cfg)

    # -- phase 2: execute the remainder --------------------------------
    def _run_in_parent(cfg: DeliveryConfig, attempts_before: int) -> None:
        t0 = time.perf_counter()
        try:
            result = common.run_delivery(cfg, spec=spec)
        except Exception:
            _report(
                cfg, "failed",
                attempts=attempts_before + 1,
                error=traceback.format_exc(),
            )
            return
        by_cfg[cfg] = result
        _report(
            cfg, "run",
            attempts=attempts_before + 1,
            worker=os.getpid(),
            wall_seconds=time.perf_counter() - t0,
            digest=result_digest(result),
        )

    if pending and (jobs == 1 or len(pending) == 1):
        for cfg in pending:
            _run_in_parent(cfg, attempts_before=0)
    elif pending:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_worker_run_point, cfg, spec, results_dir): cfg
                for cfg in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    cfg = futures[fut]
                    try:
                        payload = fut.result()
                    except Exception:
                        # The pool itself broke (worker killed/OOMed):
                        # retry this point serially in the parent.
                        _run_in_parent(cfg, attempts_before=1)
                        continue
                    if payload["ok"]:
                        result = payload["result"]
                        by_cfg[cfg] = result
                        if session is not None:
                            # Merge immediately (not at sweep end) so the
                            # parent registry -- and therefore the status
                            # panel and snapshot stream -- grows live.
                            session.merge_child_manifest(payload["manifest"])
                        _report(
                            cfg, "run",
                            attempts=1,
                            worker=payload["pid"],
                            wall_seconds=payload["wall_seconds"],
                            digest=result_digest(result),
                        )
                        if store is not None and not store.contains(cfg, spec):
                            # Belt and braces: the worker normally saved
                            # it already (run_delivery writes through).
                            store.put(result, spec)
                    else:
                        _run_in_parent(cfg, attempts_before=1)

    # Parent memo absorbs everything so fig3/fig4 reuse fig2's points.
    if spec is None:
        for cfg, result in by_cfg.items():
            common._memo.setdefault(cfg, result)

    outcome = SweepOutcome(
        results=[by_cfg.get(cfg) for cfg in configs],
        reports=[reports[cfg] for cfg in configs],
        jobs=jobs,
        wall_seconds=time.perf_counter() - t_start,
        label=label,
    )
    if monitor is not None:
        monitor.finish()
    _record_sweep_telemetry(outcome)
    return outcome


def _record_sweep_telemetry(outcome: SweepOutcome) -> None:
    """Record the sweep block in the parent session.

    Worker manifests are merged *inline* as each point completes (see
    ``run_sweep``'s completion loop) so the live view tracks the sweep;
    this epilogue only adds the store counters and the ``sweeps`` entry.
    """
    session = current_session()
    if session is None:
        return
    session.registry.counter("store.hits").inc(outcome.store_hits)
    session.registry.counter("store.misses").inc(outcome.executed)
    session.extra.setdefault("sweeps", []).append(outcome.manifest_block())


def map_configs(
    configs: Sequence[DeliveryConfig],
    spec: Optional[WorkloadSpec] = None,
    jobs: Optional[int] = None,
    label: str = "sweep",
) -> List[DeliveryResult]:
    """The drivers' entry point: results in input order, or
    :class:`SweepError` after the whole sweep finished if any point
    failed both attempts."""
    outcome = run_sweep(configs, spec=spec, jobs=jobs, label=label)
    if outcome.failures:
        raise SweepError(outcome)
    return [r for r in outcome.results if r is not None]


# ----------------------------------------------------------------------
# Generic parallel map (non-DeliveryConfig experiment work)
# ----------------------------------------------------------------------
def map_tasks(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    label: str = "tasks",
) -> List[Any]:
    """Ordered parallel map with the sweep's retry-once discipline.

    ``fn`` must be a top-level (picklable) callable.  There is no
    result store here -- use it for cheap, self-contained measurements
    (Table 2's per-size RTT estimate, the B1 baseline systems).
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    results: List[Any] = [None] * len(items)
    errors: List[str] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = {
            pool.submit(_worker_run_task, fn, item): idx
            for idx, item in enumerate(items)
        }
        for fut in list(futures):
            idx = futures[fut]
            try:
                payload = fut.result()
            except Exception:
                payload = {"ok": False, "error": traceback.format_exc()}
            if payload["ok"]:
                results[idx] = payload["result"]
            else:
                # Retry once in the parent; a second failure is fatal
                # for a generic task (there is nothing to resume from).
                try:
                    results[idx] = fn(items[idx])
                except Exception:
                    errors.append(
                        f"{label}[{idx}] failed twice:\n"
                        + traceback.format_exc()
                    )
    if errors:
        raise RuntimeError("\n".join(errors))
    return results
