"""Legacy shim: lets `pip install -e .` work on environments whose
setuptools predates PEP 660 editable wheels (no `wheel` package).
All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
